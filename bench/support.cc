#include "support.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/logging.hh"
#include "sim/parallel.hh"

namespace last::bench
{

namespace
{

constexpr const char *CacheFile = "last_bench_cache.csv";
constexpr int CacheVersion = 4; ///< v4: stress workloads in the sweep

double
benchScale()
{
    if (const char *s = std::getenv("LAST_BENCH_SCALE"))
        return std::atof(s);
    return 1.0;
}

void
writeRow(std::ostream &os, const sim::AppResult &r)
{
    // The cache must never hold poisoned rows: a quarantined result
    // carries no statistics and would be served back as real data on
    // the next run.
    panic_if(r.quarantined,
             "refusing to persist quarantined run %s/%s to the bench "
             "cache (%s)",
             r.workload.c_str(), isaName(r.isa),
             r.errorMessage.c_str());
    os << r.workload << ',' << isaName(r.isa) << ',' << r.verified
       << ',' << r.digest << ',' << r.dynInsts << ',' << r.valu << ','
       << r.salu << ',' << r.vmem << ',' << r.smem << ',' << r.lds
       << ',' << r.branch << ',' << r.waitcnt << ',' << r.misc << ','
       << r.cycles << ',' << r.ipc << ',' << r.vrfBankConflicts << ','
       << r.reuseMedian << ',' << r.instFootprint << ','
       << r.ibFlushes << ',' << r.readUniq << ',' << r.writeUniq
       << ',' << r.vrfUniq << ',' << r.dataFootprint << ','
       << r.simdUtil << ',' << r.l1iMisses << ',' << r.l1iHits << ','
       << r.hazardViolations << '\n';
    for (const auto &l : r.launches)
        os << "launch," << l.kernel << ',' << l.cycles << ','
           << l.instsIssued << '\n';
    os << "end\n";
}

/**
 * Parse one cached app row. Returns false on a clean end-of-file;
 * throws (std::invalid_argument from the numeric conversions, or
 * std::runtime_error for a bad ISA tag) on a truncated or garbled
 * row — the caller treats any throw as a cache miss.
 */
bool
readRow(std::istream &is, sim::AppResult &r)
{
    std::string line;
    if (!std::getline(is, line) || line.empty())
        return false;
    std::istringstream ls(line);
    std::string isa, tok;
    auto next = [&]() {
        if (!std::getline(ls, tok, ','))
            throw std::runtime_error("truncated cache row");
        return tok;
    };
    r.workload = next();
    isa = next();
    if (isa != "GCN3" && isa != "HSAIL")
        throw std::runtime_error("bad ISA tag in cache row");
    r.isa = isa == "GCN3" ? IsaKind::GCN3 : IsaKind::HSAIL;
    r.verified = std::stoi(next());
    r.digest = std::stoull(next());
    r.dynInsts = std::stoull(next());
    r.valu = std::stoull(next());
    r.salu = std::stoull(next());
    r.vmem = std::stoull(next());
    r.smem = std::stoull(next());
    r.lds = std::stoull(next());
    r.branch = std::stoull(next());
    r.waitcnt = std::stoull(next());
    r.misc = std::stoull(next());
    r.cycles = std::stoull(next());
    r.ipc = std::stod(next());
    r.vrfBankConflicts = std::stoull(next());
    r.reuseMedian = std::stod(next());
    r.instFootprint = std::stoull(next());
    r.ibFlushes = std::stoull(next());
    r.readUniq = std::stod(next());
    r.writeUniq = std::stod(next());
    r.vrfUniq = std::stod(next());
    r.dataFootprint = std::stoull(next());
    r.simdUtil = std::stod(next());
    r.l1iMisses = std::stoull(next());
    r.l1iHits = std::stoull(next());
    r.hazardViolations = std::stoull(next());
    while (std::getline(is, line) && line != "end") {
        std::istringstream lls(line);
        std::string tag, kernel, cyc, insts;
        std::getline(lls, tag, ',');
        std::getline(lls, kernel, ',');
        std::getline(lls, cyc, ',');
        std::getline(lls, insts, ',');
        r.launches.push_back(
            {kernel, std::stoull(cyc), std::stoull(insts)});
    }
    return true;
}

std::vector<AppPair>
computeAll()
{
    const auto names = workloads::allWorkloadNames();
    workloads::WorkloadScale scale{benchScale()};

    // The 14-workload x 2-ISA sweep is embarrassingly parallel: every
    // run owns its Runtime/Gpu/FunctionalMemory. Results come back in
    // spec order, bit-identical to a serial (LAST_JOBS=1) sweep.
    std::vector<sim::RunSpec> specs;
    specs.reserve(names.size() * 2);
    for (const auto &w : names) {
        specs.push_back({w, IsaKind::HSAIL, GpuConfig{}, scale});
        specs.push_back({w, IsaKind::GCN3, GpuConfig{}, scale});
    }
    std::fprintf(stderr,
                 "[bench] simulating %zu workloads x 2 ISAs on %u "
                 "worker(s) (override with LAST_JOBS) ...\n",
                 names.size(), sim::defaultJobs());
    // Graceful sweep: a poisoned run is quarantined (after one serial
    // retry) while the rest completes, then reported here. The bench
    // needs every row to draw its figures, so quarantine is still
    // fatal — but only after the full casualty report is printed and
    // with the cache left untouched.
    auto sweep = sim::runSweep(specs);
    if (!sweep.allOk()) {
        std::fprintf(stderr, "[bench] sweep completed with failures:\n%s",
                     sweep.format().c_str());
        fatal("%zu of %zu bench runs quarantined; no cache written "
              "(see the report above)",
              sweep.quarantined.size(), specs.size());
    }
    auto &results = sweep.results;

    std::vector<AppPair> out;
    out.reserve(names.size());
    for (size_t i = 0; i < names.size(); ++i) {
        sim::AppResult &h = results[2 * i];
        sim::AppResult &g = results[2 * i + 1];
        fatal_if(!h.verified || !g.verified,
                 "workload %s failed verification", names[i].c_str());
        fatal_if(h.digest != g.digest,
                 "workload %s: cross-ISA result mismatch",
                 names[i].c_str());
        out.push_back({std::move(h), std::move(g)});
    }
    return out;
}

/**
 * Parse a complete cache body. Each app pair is validated against the
 * canonical workload list — name and ISA per row — so a stale or
 * reordered cache with the right row count is rejected rather than
 * silently mislabelling every figure. Truncated or garbled rows throw
 * out of readRow; the caller treats that as a cache miss.
 */
bool
readCacheBody(std::istream &in, std::vector<AppPair> &out)
{
    const auto names = workloads::allWorkloadNames();
    for (const auto &name : names) {
        AppPair p;
        if (!readRow(in, p.hsail) || !readRow(in, p.gcn3))
            return false;
        if (p.hsail.workload != name || p.gcn3.workload != name ||
            p.hsail.isa != IsaKind::HSAIL ||
            p.gcn3.isa != IsaKind::GCN3)
            return false;
        out.push_back(std::move(p));
    }
    return out.size() == names.size();
}

std::vector<AppPair>
loadOrCompute()
{
    double scale = benchScale();
    {
        std::ifstream in(CacheFile);
        if (in) {
            int ver = 0;
            double cached_scale = 0;
            std::string header;
            std::getline(in, header);
            std::sscanf(header.c_str(), "last-bench-cache v%d scale=%lf",
                        &ver, &cached_scale);
            if (ver == CacheVersion && cached_scale == scale) {
                std::vector<AppPair> out;
                bool ok = false;
                try {
                    ok = readCacheBody(in, out);
                    if (!ok)
                        std::fprintf(stderr,
                                     "[bench] ignoring stale cache "
                                     "%s: rows do not match the "
                                     "current workload list\n",
                                     CacheFile);
                } catch (const std::exception &e) {
                    std::fprintf(stderr,
                                 "[bench] ignoring damaged cache "
                                 "%s: %s\n",
                                 CacheFile, e.what());
                }
                if (ok)
                    return out;
            }
        }
    }
    auto out = computeAll();
    std::ofstream os(CacheFile);
    os << "last-bench-cache v" << CacheVersion << " scale=" << scale
       << "\n";
    for (const auto &p : out) {
        writeRow(os, p.hsail);
        writeRow(os, p.gcn3);
    }
    return out;
}

/** The full cached sweep: Table 5 pairs first, then stress. */
const std::vector<AppPair> &
allPairs()
{
    static std::vector<AppPair> results = loadOrCompute();
    return results;
}

} // namespace

const std::vector<AppPair> &
allResults()
{
    static std::vector<AppPair> table5(
        allPairs().begin(),
        allPairs().begin() +
            std::ptrdiff_t(workloads::workloadNames().size()));
    return table5;
}

const std::vector<AppPair> &
stressResults()
{
    static std::vector<AppPair> stress(
        allPairs().begin() +
            std::ptrdiff_t(workloads::workloadNames().size()),
        allPairs().end());
    return stress;
}

double
geomean(const std::vector<double> &xs)
{
    double s = 0;
    for (double x : xs)
        s += std::log(x > 0 ? x : 1e-9);
    return std::exp(s / double(xs.size()));
}

void
printHeader(const std::string &what)
{
    GpuConfig cfg;
    std::printf("== %s ==\n", what.c_str());
    std::printf("config (Table 4): %s\n", cfg.summary().c_str());
}

} // namespace last::bench
