/**
 * @file
 * Figure 10: uniqueness of VRF lane values (|unique active lane
 * values| / |active lanes| per access). The abstraction can mislead in
 * BOTH directions: ArrayBW underestimates uniqueness under HSAIL,
 * LULESH-style segment address exposure pushes GCN3 down.
 */

#include <cstdio>

#include "support.hh"

using namespace last;
using namespace last::bench;

int
main()
{
    printHeader("Figure 10: VRF lane-value uniqueness");
    const auto &rs = allResults();
    std::printf("%-12s %9s %9s %9s %9s %9s %9s\n", "app", "H-read",
                "H-write", "H-all", "G-read", "G-write", "G-all");
    for (const auto &p : rs) {
        std::printf("%-12s %8.1f%% %8.1f%% %8.1f%% %8.1f%% %8.1f%% "
                    "%8.1f%%\n",
                    p.hsail.workload.c_str(), 100 * p.hsail.readUniq,
                    100 * p.hsail.writeUniq, 100 * p.hsail.vrfUniq,
                    100 * p.gcn3.readUniq, 100 * p.gcn3.writeUniq,
                    100 * p.gcn3.vrfUniq);
    }
    std::printf("\n(paper shapes: ArrayBW ~12%% -> ~30%%; value "
                "redundancy moves in both directions by ISA)\n");
    return 0;
}
