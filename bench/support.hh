/**
 * @file
 * Shared support for the per-figure benchmark binaries.
 *
 * Running every Table 5 application plus the stress workloads at both
 * ISA levels takes minutes, so the first bench binary to run performs
 * the sweep and caches the per-app statistics in
 * ./last_bench_cache.csv; the other binaries reuse it. Delete the
 * file (or change LAST_BENCH_SCALE) to force a fresh sweep.
 */

#ifndef LAST_BENCH_SUPPORT_HH
#define LAST_BENCH_SUPPORT_HH

#include <string>
#include <vector>

#include "sim/experiment.hh"

namespace last::bench
{

struct AppPair
{
    sim::AppResult hsail;
    sim::AppResult gcn3;
};

/** The ten Table 5 applications, simulated at both ISA levels
 *  (cached). The figure binaries draw their geomeans from exactly
 *  this set, keeping them paper-faithful. */
const std::vector<AppPair> &allResults();

/** The stress workloads beyond Table 5 (atomicred, ldsswizzle,
 *  bfsgraph, pipeline), from the same cached sweep. */
const std::vector<AppPair> &stressResults();

/** Geometric mean over per-app ratios. */
double geomean(const std::vector<double> &xs);

/** Print the standard bench header (config + provenance). */
void printHeader(const std::string &what);

} // namespace last::bench

#endif // LAST_BENCH_SUPPORT_HH
