/**
 * @file
 * Table 6: the statistics that stay SIMILAR across the abstraction —
 * data footprint (except the special-segment apps FFT and LULESH) and
 * SIMD lane utilization.
 */

#include <cstdio>

#include "support.hh"

using namespace last;
using namespace last::bench;

int
main()
{
    printHeader("Table 6: data footprint and SIMD utilization");
    const auto &rs = allResults();
    std::printf("%-12s | %12s %12s | %9s %9s\n", "app",
                "foot(HSAIL)", "foot(GCN3)", "util(H)", "util(G)");
    for (const auto &p : rs) {
        std::printf("%-12s | %11.0fkB %11.0fkB | %8.0f%% %8.0f%%\n",
                    p.hsail.workload.c_str(),
                    double(p.hsail.dataFootprint) / 1024,
                    double(p.gcn3.dataFootprint) / 1024,
                    100 * p.hsail.simdUtil, 100 * p.gcn3.simdUtil);
    }
    std::printf("\n(paper: footprints identical except FFT ~1.2x and "
                "LULESH ~4.5x larger under HSAIL — the per-launch "
                "segment re-mapping; utilization within a few "
                "percent everywhere)\n");
    return 0;
}
