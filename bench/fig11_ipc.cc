/**
 * @file
 * Figure 11: IPC normalized to HSAIL. GCN3 generally retires more
 * instructions per cycle (several machine instructions correspond to
 * one IL instruction); FFT and LULESH are the paper's exceptions.
 */

#include <cstdio>

#include "support.hh"

using namespace last;
using namespace last::bench;

int
main()
{
    printHeader("Figure 11: normalized IPC (GCN3 / HSAIL)");
    const auto &rs = allResults();
    std::printf("%-12s %8s %8s %8s\n", "app", "HSAIL", "GCN3",
                "ratio");
    std::vector<double> ratios;
    for (const auto &p : rs) {
        double ratio = p.gcn3.ipc / std::max(p.hsail.ipc, 1e-9);
        ratios.push_back(ratio);
        std::printf("%-12s %8.3f %8.3f %8.2f\n",
                    p.hsail.workload.c_str(), p.hsail.ipc, p.gcn3.ipc,
                    ratio);
    }
    std::printf("\ngeomean: %.2fx (paper: >1x for most apps)\n",
                geomean(ratios));
    return 0;
}
