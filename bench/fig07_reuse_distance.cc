/**
 * @file
 * Figure 7: median vector-register reuse distance (dynamic
 * instructions between touches of the same architectural register).
 * The finalizer's scheduling and scalarization roughly double it.
 */

#include <cstdio>

#include "support.hh"

using namespace last;
using namespace last::bench;

int
main()
{
    printHeader("Figure 7: median vector register reuse distance");
    const auto &rs = allResults();
    std::printf("%-12s %10s %10s %8s\n", "app", "HSAIL", "GCN3",
                "ratio");
    std::vector<double> ratios;
    for (const auto &p : rs) {
        double h = std::max(p.hsail.reuseMedian, 0.01);
        double g = std::max(p.gcn3.reuseMedian, 0.01);
        ratios.push_back(g / h);
        std::printf("%-12s %10.1f %10.1f %8.2f\n",
                    p.hsail.workload.c_str(), p.hsail.reuseMedian,
                    p.gcn3.reuseMedian, g / h);
    }
    std::printf("\ngeomean GCN3/HSAIL: %.2fx (paper: ~2x, FFT ~1x)\n",
                geomean(ratios));
    return 0;
}
