/**
 * @file
 * Figure 6: VRF bank conflicts. The paper reports GCN3 encountering
 * roughly one third of HSAIL's port conflicts: GCN vector instructions
 * draw base addresses and bookkeeping from the SRF while every HSAIL
 * operand lives in the VRF.
 */

#include <cstdio>

#include "support.hh"

using namespace last;
using namespace last::bench;

int
main()
{
    printHeader("Figure 6: VRF bank conflicts");
    const auto &rs = allResults();
    std::printf("%-12s %14s %14s %8s\n", "app", "HSAIL", "GCN3",
                "ratio");
    std::vector<double> ratios;
    for (const auto &p : rs) {
        double ratio = double(p.gcn3.vrfBankConflicts) /
                       std::max<uint64_t>(p.hsail.vrfBankConflicts, 1);
        ratios.push_back(ratio);
        std::printf("%-12s %14llu %14llu %8.2f\n",
                    p.hsail.workload.c_str(),
                    (unsigned long long)p.hsail.vrfBankConflicts,
                    (unsigned long long)p.gcn3.vrfBankConflicts,
                    ratio);
    }
    std::printf("\ngeomean GCN3/HSAIL: %.2fx (paper: ~0.33x)\n",
                geomean(ratios));
    return 0;
}
