/**
 * @file
 * Table 7: hardware correlation and mean absolute runtime error.
 *
 * The paper compares simulated runtimes against an AMD A12-8800B APU.
 * No GPU hardware exists in this environment, so the reference is a
 * "hardware oracle": the same applications simulated at the GCN3
 * level under a perturbed machine configuration (different memory and
 * ALU latencies) with deterministic per-application measurement noise
 * — preserving the structure of the paper's result (both ISAs
 * correlate well; the IL adds large, high-variance absolute error on
 * top of the model's own error). See DESIGN.md for the substitution
 * rationale.
 */

#include <cmath>
#include <cstdio>

#include "sim/parallel.hh"
#include "support.hh"

using namespace last;
using namespace last::bench;

namespace
{

GpuConfig
oracleConfig()
{
    GpuConfig cfg;
    cfg.dramLatency = 120;
    cfg.dramCyclesPerLine = 3;
    cfg.l2.hitLatency = 18;
    cfg.l1d.hitLatency = 3;
    cfg.valuLatency = 3;
    cfg.ibEntries = 16;
    return cfg;
}

double
noiseFor(const std::string &name)
{
    uint64_t h = 1469598103934665603ull;
    for (char c : name) {
        h ^= uint8_t(c);
        h *= 1099511628211ull;
    }
    // Deterministic in [0.92, 1.08].
    return 0.92 + double(h % 1600) / 10000.0;
}

double
pearson(const std::vector<double> &x, const std::vector<double> &y)
{
    double mx = 0, my = 0;
    for (size_t i = 0; i < x.size(); ++i) {
        mx += x[i];
        my += y[i];
    }
    mx /= double(x.size());
    my /= double(y.size());
    double sxy = 0, sxx = 0, syy = 0;
    for (size_t i = 0; i < x.size(); ++i) {
        sxy += (x[i] - mx) * (y[i] - my);
        sxx += (x[i] - mx) * (x[i] - mx);
        syy += (y[i] - my) * (y[i] - my);
    }
    return sxy / std::sqrt(sxx * syy);
}

} // namespace

int
main()
{
    printHeader("Table 7: correlation and absolute error vs the "
                "hardware oracle");
    const auto &rs = allResults();

    std::printf("building the oracle (perturbed-config GCN3 runs, "
                "%u worker(s))...\n",
                sim::defaultJobs());
    workloads::WorkloadScale scale{1.0};
    if (const char *s = std::getenv("LAST_BENCH_SCALE"))
        scale.factor = std::atof(s);

    // The oracle runs are independent simulations; sweep them on the
    // parallel driver and consume the results in app order.
    std::vector<sim::RunSpec> specs;
    specs.reserve(rs.size());
    for (const auto &p : rs)
        specs.push_back(
            {p.hsail.workload, IsaKind::GCN3, oracleConfig(), scale});
    auto oracles = sim::runMany(specs);

    std::vector<double> oracle, hs, gs;
    std::vector<double> herr, gerr;
    std::printf("%-12s %12s %12s %12s %8s %8s\n", "app", "oracle",
                "HSAIL", "GCN3", "errH", "errG");
    for (size_t i = 0; i < rs.size(); ++i) {
        const auto &p = rs[i];
        const auto &o = oracles[i];
        double ocyc = double(o.cycles) * noiseFor(p.hsail.workload);
        oracle.push_back(std::log(ocyc));
        hs.push_back(std::log(double(p.hsail.cycles)));
        gs.push_back(std::log(double(p.gcn3.cycles)));
        double eh = std::fabs(double(p.hsail.cycles) - ocyc) / ocyc;
        double eg = std::fabs(double(p.gcn3.cycles) - ocyc) / ocyc;
        herr.push_back(eh);
        gerr.push_back(eg);
        std::printf("%-12s %12.0f %12llu %12llu %7.1f%% %7.1f%%\n",
                    p.hsail.workload.c_str(), ocyc,
                    (unsigned long long)p.hsail.cycles,
                    (unsigned long long)p.gcn3.cycles, 100 * eh,
                    100 * eg);
    }

    auto mean = [](const std::vector<double> &v) {
        double s = 0;
        for (double x : v)
            s += x;
        return s / double(v.size());
    };
    auto stdev = [&](const std::vector<double> &v) {
        double m = mean(v), s = 0;
        for (double x : v)
            s += (x - m) * (x - m);
        return std::sqrt(s / double(v.size()));
    };

    std::printf("\n%-24s %10s %10s\n", "", "HSAIL", "GCN3");
    std::printf("%-24s %10.3f %10.3f   (paper: 0.972 / 0.973)\n",
                "correlation", pearson(hs, oracle),
                pearson(gs, oracle));
    std::printf("%-24s %9.1f%% %9.1f%%   (paper: 75%% / 42%%)\n",
                "mean absolute error", 100 * mean(herr),
                100 * mean(gerr));
    std::printf("%-24s %9.1f%% %9.1f%%   (paper: HSAIL high "
                "variance)\n",
                "error std deviation", 100 * stdev(herr),
                100 * stdev(gerr));
    return 0;
}
