#!/bin/sh
# Cross-ISA divergence report: run the tier-1 workloads at both
# abstraction levels (HSAIL and GCN3) and print, per workload, the
# ranked relative delta of every per-figure statistic — the automated
# version of the paper's accurate-vs-divergent classification (Table 7
# / Figures 5-12). See DESIGN.md §5 for the ranking rules and
# EXPERIMENTS.md for the figure-by-figure walkthrough.
#
# Usage: scripts/report_divergence.sh [options] [workload...]
#   --scale F      workload scale factor (default 1.0)
#   --threshold T  divergence threshold as a fraction (default 0.10)
#   --json FILE    also write the machine-readable report array
#   --jobs N       parallel simulations (default: all cores; LAST_JOBS
#                  is honored too)
#   workload...    subset to run (default: all Table 5 applications)
#
# Exit status: 0 when every differential run succeeded (divergent
# statistics are the expected *result*, not a failure); non-zero when a
# run was quarantined or the functional cross-ISA invariant broke.
set -u

cd "$(dirname "$0")/.."
repo=$(pwd)

fail() {
    echo "report_divergence: FAILED: $1" >&2
    exit 1
}

# Reuse the Release tree the perf baseline uses: divergence reports
# sweep every workload twice, which is painful at RelWithDebInfo speed.
cmake -B build-perf -S . -DCMAKE_BUILD_TYPE=Release >/dev/null ||
    fail "configure"
cmake --build build-perf -j --target last_obs >/dev/null ||
    fail "build"

# --json output is written by last_obs through atomicWriteFile (temp +
# fsync + rename), so killing this script mid-report can never leave a
# torn JSON for a downstream consumer.
exec "$repo/build-perf/tools/last_obs" diverge "$@"
