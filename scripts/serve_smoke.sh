#!/bin/sh
# Smoke test for the multi-tenant sweep server (`last_serve`,
# DESIGN.md §4g): start a daemon, hit it with parallel identical
# clients, and assert
#  - every served `last-divergence-v2` report is byte-identical to the
#    offline `last_obs diverge --json` artifact for the same spec;
#  - concurrent identical queries cost exactly one simulation of the
#    N-ISA group (in-flight coalescing / warm-store reuse, read from
#    `status`);
#  - a warm repeat query simulates nothing (`simulated_specs` frozen);
#  - a malformed request gets a structured error and the daemon
#    survives to answer the next query;
#  - a clean shutdown leaves no leaked unix socket file and the daemon
#    process actually exits.
#
# Usage: scripts/serve_smoke.sh    (from the repo root)
#
# Exit status: 0 when every check passed; nonzero (with a FAILED line)
# otherwise.
set -u

cd "$(dirname "$0")/.."
repo=$(pwd)

fail() {
    echo "serve_smoke: FAILED: $1" >&2
    [ -n "${daemon_pid:-}" ] && kill "$daemon_pid" 2>/dev/null
    exit 1
}

cmake -B build-perf -S . -DCMAKE_BUILD_TYPE=Release >/dev/null ||
    fail "configure"
cmake --build build-perf -j --target last_serve last_obs >/dev/null ||
    fail "build"
serve=$repo/build-perf/tools/last_serve
obs=$repo/build-perf/tools/last_obs

tmp=$(mktemp -d /tmp/last_serve_XXXXXX) || fail "mktemp"
trap 'rm -rf "$tmp"' EXIT INT TERM
sock=$tmp/serve.sock

workload=atomicred
scale=0.25

# ---------------------------------------------------------------- 1 --
echo "serve_smoke: [1/5] offline reference artifact"
"$obs" diverge "$workload" --scale "$scale" --json "$tmp/offline.json" \
    >/dev/null 2>&1 || fail "offline last_obs diverge"

# ---------------------------------------------------------------- 2 --
echo "serve_smoke: [2/5] daemon + 4 parallel identical clients"
"$serve" serve --unix "$sock" --workers 2 2>"$tmp/daemon.log" &
daemon_pid=$!
for i in 1 2 3 4 5 6 7 8 9 10; do
    [ -S "$sock" ] && break
    sleep 0.2
done
[ -S "$sock" ] || fail "daemon did not come up (see $tmp/daemon.log)"

client_pids=
for i in 1 2 3 4; do
    "$serve" client --unix "$sock" diverge "$workload" \
        --scale "$scale" --out "$tmp/served_$i.json" \
        2>"$tmp/client_$i.log" &
    client_pids="$client_pids $!"
done
wait_status=0
for pid in $client_pids; do
    wait "$pid" || wait_status=1
done
[ "$wait_status" -eq 0 ] || fail "a parallel client exited nonzero"

for i in 1 2 3 4; do
    cmp -s "$tmp/served_$i.json" "$tmp/offline.json" ||
        fail "served report $i differs from the offline artifact"
done
grep -q '"schema":"last-divergence-v2"' "$tmp/served_1.json" ||
    fail "served report is not a last-divergence-v2 payload"
grep -q '"PTXL"' "$tmp/served_1.json" ||
    fail "served report is missing the PTXL column"

# ---------------------------------------------------------------- 3 --
echo "serve_smoke: [3/5] one simulated ISA group, warm repeat adds none"
status=$("$serve" client --unix "$sock" status) || fail "status query"
echo "$status" | grep -q '"simulated_specs":3' ||
    fail "expected exactly one simulated ISA group (HSAIL+GCN3+PTXL), got: $status"

"$serve" client --unix "$sock" diverge "$workload" --scale "$scale" \
    --out "$tmp/warm.json" 2>"$tmp/warm.log" || fail "warm query"
cmp -s "$tmp/warm.json" "$tmp/offline.json" ||
    fail "warm served report differs from the offline artifact"
grep -q "served from cache" "$tmp/warm.log" ||
    fail "warm query was not served from the store"
status=$("$serve" client --unix "$sock" status) || fail "status query"
echo "$status" | grep -q '"simulated_specs":3' ||
    fail "warm query simulated something: $status"

# ---------------------------------------------------------------- 4 --
echo "serve_smoke: [4/5] malformed request, daemon survives"
garbage_out=$(printf 'this is not json\n' | timeout 10 \
    python3 -c '
import socket, sys
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(sys.argv[1])
s.sendall(sys.stdin.buffer.read())
print(s.makefile().readline(), end="")
' "$sock") || fail "raw garbage round-trip"
echo "$garbage_out" | grep -q '"error_kind":"parse"' ||
    fail "garbage line did not get a structured parse error"
kill -0 "$daemon_pid" 2>/dev/null || fail "daemon died on garbage input"
"$serve" client --unix "$sock" ping >/dev/null || fail "post-garbage ping"

# ---------------------------------------------------------------- 5 --
echo "serve_smoke: [5/5] clean shutdown, no leaked socket"
"$serve" client --unix "$sock" shutdown >/dev/null || fail "shutdown"
for i in 1 2 3 4 5 6 7 8 9 10; do
    kill -0 "$daemon_pid" 2>/dev/null || break
    sleep 0.2
done
kill -0 "$daemon_pid" 2>/dev/null && fail "daemon still running"
wait "$daemon_pid" 2>/dev/null
daemon_pid=
[ -e "$sock" ] && fail "leaked socket file $sock"

echo "serve_smoke: OK"
exit 0
