#!/bin/sh
# Perf-regression baseline for the statistic-identical fast paths.
#
# Measures three things on a Release build and writes them to a JSON
# baseline (BENCH_<n>.json at the repo root, committed per PR):
#
#  1. The tier-1 figure sweep: wall-clock of fig01_summary populating a
#     FRESH result cache in a scratch directory. Best-of-N, since
#     wall-clock minima are the stable statistic on a noisy machine.
#     The timed sweep is pinned to the two-ISA (HSAIL/GCN3) matrix via
#     LAST_BENCH_ISAS so the number stays comparable with pre-PTXL
#     baselines; the statistic-identity check below still covers the
#     full three-ISA canonical matrix.
#  2. The sharded sweep backend: a fresh single-shard `last_sweep run`
#     vs a warm incremental rerun against its own cache. The warm run
#     must reuse every row, emit byte-identical artifacts, and finish
#     at least 10x faster than the fresh run.
#  3. Component microbenchmarks (bench/micro_components) covering the
#     rewritten paths, including the skewed-duration scheduler pair
#     (BM_ParallelInvokeSkewedStatic vs ...Steal) — the work-stealing
#     pool must beat static chunking on the skewed batch — and the
#     execution-engine pair (BM_ExecuteValuLoop / BM_DispatchChain,
#     Arg 0 = predecoded handlers, Arg 1 = virtual reference) — the
#     predecoded engine must beat virtual dispatch on both.
#
# It also proves statistic identity: the freshly generated cache files
# (fig01_summary's and last_sweep's) must be byte-identical to the
# committed last_bench_cache.csv. A perf "win" that changes a statistic
# is a bug, and this script fails on it.
#
# Usage: scripts/bench_perf.sh [--quick] [--check BASELINES] [OUT.json]
#   --quick   1 sweep rep + short microbench time (CI smoke)
#   --check   comma-separated list of committed BENCH_<n>.json files;
#             the measured sweep is gated against the BEST (fastest)
#             of them and fails if it regressed by more than 25%
#   OUT.json  where to write results (default: stdout)
set -u

cd "$(dirname "$0")/.."
repo=$(pwd)

reps=3
min_time=0.2
check_file=""
out=""
quick=0
while [ $# -gt 0 ]; do
    case "$1" in
      --quick) quick=1; reps=1; min_time=0.05 ;;
      --check) shift; check_file="$1" ;;
      -h|--help) sed -n '2,24p' "$0"; exit 0 ;;
      *) out="$1" ;;
    esac
    shift
done

fail() {
    echo "bench_perf: FAILED: $1" >&2
    exit 1
}

# Release build (the RelWithDebInfo tree used for tests understates
# the simulator's real throughput).
cmake -B build-perf -S . -DCMAKE_BUILD_TYPE=Release >/dev/null ||
    fail "configure"
cmake --build build-perf -j --target fig01_summary micro_components \
    last_sweep >/dev/null || fail "build"

# --- 1. Figure sweep: fresh cache in a scratch dir, best of N. ------
# Timed on the two-ISA sweep (see header) for baseline comparability.
scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT

best_ms=""
i=0
while [ "$i" -lt "$reps" ]; do
    rm -f "$scratch/last_bench_cache.csv"
    t0=$(date +%s%N)
    (cd "$scratch" &&
        LAST_BENCH_ISAS="HSAIL,GCN3" \
            "$repo/build-perf/bench/fig01_summary" >/dev/null) ||
        fail "sweep run"
    t1=$(date +%s%N)
    ms=$(( (t1 - t0) / 1000000 ))
    [ -z "$best_ms" ] || [ "$ms" -lt "$best_ms" ] && best_ms=$ms
    i=$((i + 1))
done

# --- 2. Statistic identity against the committed cache. -------------
# One untimed full-matrix (all ISAs, PTXL included) run: the committed
# last_bench_cache.csv is the three-ISA artifact.
rm -f "$scratch/last_bench_cache.csv"
(cd "$scratch" && "$repo/build-perf/bench/fig01_summary" >/dev/null) ||
    fail "full-matrix sweep run"
cache_identical=false
if [ -f "$repo/last_bench_cache.csv" ]; then
    if cmp -s "$repo/last_bench_cache.csv" \
        "$scratch/last_bench_cache.csv"; then
        cache_identical=true
    else
        fail "regenerated cache differs from committed last_bench_cache.csv — a fast path changed a statistic"
    fi
else
    echo "bench_perf: no committed last_bench_cache.csv; skipping identity check" >&2
fi

# --- 3. Sharded backend: fresh last_sweep vs warm incremental. ------
sweep_bin="$repo/build-perf/tools/last_sweep"
"$sweep_bin" plan --shards 1 --out-dir "$scratch" >/dev/null 2>&1 ||
    fail "last_sweep plan"

t0=$(date +%s%N)
"$sweep_bin" run "$scratch/shard_0.json" \
    --out "$scratch/fresh.csv" --diverge "$scratch/fresh.json" \
    >/dev/null 2>&1 || fail "last_sweep fresh run"
t1=$(date +%s%N)
shard_fresh_ms=$(( (t1 - t0) / 1000000 ))

# The CLI's artifact and fig01_summary's must be the same bytes — one
# cache format, one writer, shared across the whole backend.
if [ -f "$repo/last_bench_cache.csv" ]; then
    cmp -s "$repo/last_bench_cache.csv" "$scratch/fresh.csv" ||
        fail "last_sweep cache differs from committed last_bench_cache.csv"
fi

t0=$(date +%s%N)
"$sweep_bin" run "$scratch/shard_0.json" --cache "$scratch/fresh.csv" \
    --out "$scratch/warm.csv" --diverge "$scratch/warm.json" \
    >/dev/null 2>&1 || fail "last_sweep warm run"
t1=$(date +%s%N)
shard_warm_ms=$(( (t1 - t0) / 1000000 ))

cmp -s "$scratch/fresh.csv" "$scratch/warm.csv" ||
    fail "warm incremental run changed the cache bytes"
cmp -s "$scratch/fresh.json" "$scratch/warm.json" ||
    fail "warm incremental run changed the divergence report bytes"

# The incremental acceptance gate: a fully-warm cache must be at least
# 10x faster than re-simulating the matrix.
[ "$shard_warm_ms" -gt 0 ] || shard_warm_ms=1
if [ $((shard_warm_ms * 10)) -gt "$shard_fresh_ms" ]; then
    fail "warm incremental sweep ${shard_warm_ms} ms is not >=10x faster than fresh ${shard_fresh_ms} ms"
fi
echo "bench_perf: shard backend OK (fresh ${shard_fresh_ms} ms, warm ${shard_warm_ms} ms)" >&2

# --- 4. Component microbenchmarks (google-benchmark JSON). ----------
micro_json="$scratch/micro.json"
"$repo/build-perf/bench/micro_components" \
    --benchmark_min_time="$min_time" \
    --benchmark_out="$micro_json" --benchmark_out_format=json \
    >/dev/null 2>&1 || fail "micro_components"

# The scheduler gate: on the skewed batch, work stealing must beat the
# static-chunk baseline (both are timed waits, so real_time measures
# the schedule makespan on any core count).
static_ms=$(jq -r '[.benchmarks[]
    | select(.name | startswith("BM_ParallelInvokeSkewedStatic"))
    | .real_time][0]' "$micro_json")
steal_ms=$(jq -r '[.benchmarks[]
    | select(.name | startswith("BM_ParallelInvokeSkewedSteal"))
    | .real_time][0]' "$micro_json")
[ "$static_ms" != "null" ] && [ "$steal_ms" != "null" ] ||
    fail "skewed scheduler benchmarks missing from micro_components output"
if [ "$(awk -v s="$steal_ms" -v t="$static_ms" 'BEGIN{print (s < t) ? 1 : 0}')" != "1" ]; then
    fail "work stealing (${steal_ms} ms) not faster than static chunking (${static_ms} ms) on the skewed batch"
fi
echo "bench_perf: skewed scheduler OK (static ${static_ms} ms, steal ${steal_ms} ms)" >&2

# The execution-engine gate: the predecoded direct-threaded engine
# (Arg 0) must beat the legacy virtual-dispatch reference (Arg 1) on
# both the homogeneous VALU loop and the heterogeneous dispatch chain.
for eng_bm in BM_ExecuteValuLoop BM_DispatchChain; do
    pre_ns=$(jq -r --arg n "$eng_bm/0" '[.benchmarks[]
        | select(.name == $n) | .real_time][0]' "$micro_json")
    ref_ns=$(jq -r --arg n "$eng_bm/1" '[.benchmarks[]
        | select(.name == $n) | .real_time][0]' "$micro_json")
    [ "$pre_ns" != "null" ] && [ "$ref_ns" != "null" ] ||
        fail "$eng_bm engine pair missing from micro_components output"
    if [ "$(awk -v p="$pre_ns" -v r="$ref_ns" 'BEGIN{print (p < r) ? 1 : 0}')" != "1" ]; then
        fail "predecoded engine (${pre_ns} ns) not faster than virtual dispatch (${ref_ns} ns) on $eng_bm"
    fi
    echo "bench_perf: $eng_bm OK (predecoded ${pre_ns} ns, reference ${ref_ns} ns)" >&2
done

# --- 5. Emit the baseline JSON. -------------------------------------
result=$(jq -n \
    --argjson sweep_ms "$best_ms" \
    --argjson reps "$reps" \
    --argjson quick "$([ "$quick" -eq 1 ] && echo true || echo false)" \
    --argjson cache_identical "$cache_identical" \
    --argjson shard_fresh_ms "$shard_fresh_ms" \
    --argjson shard_warm_ms "$shard_warm_ms" \
    --slurpfile micro "$micro_json" \
    '{
        schema: "last-bench-perf v3",
        sweep: {
            description: "fig01_summary populating a fresh result cache (all workloads, both ISAs)",
            wall_ms_best: $sweep_ms,
            reps: $reps,
            quick: $quick
        },
        shard: {
            description: "last_sweep single-shard run: fresh matrix vs fully-warm incremental cache",
            fresh_ms: $shard_fresh_ms,
            warm_ms: $shard_warm_ms
        },
        cache_identical: $cache_identical,
        micro: ($micro[0].benchmarks | map({
            name, real_time, cpu_time, time_unit
        }))
    }')

if [ -n "$out" ]; then
    printf '%s\n' "$result" > "$out"
    echo "bench_perf: wrote $out (sweep best ${best_ms} ms)"
else
    printf '%s\n' "$result"
fi

# --- 6. Optional regression gate. -----------------------------------
# --check takes a comma-separated list of committed baselines; the
# gate runs against the fastest of them, so a PR that lands a speedup
# ratchets the bar for every later PR instead of resetting it.
if [ -n "$check_file" ]; then
    base_ms=""
    old_ifs=$IFS
    IFS=,
    for f in $check_file; do
        IFS=$old_ifs
        [ -f "$f" ] || fail "baseline $f not found"
        ms=$(jq -r '.sweep.wall_ms_best' "$f")
        [ "$ms" != "null" ] || fail "baseline $f has no sweep.wall_ms_best"
        [ -z "$base_ms" ] || [ "$ms" -lt "$base_ms" ] && base_ms=$ms
        IFS=,
    done
    IFS=$old_ifs
    # >25% slower than the best committed baseline fails the gate.
    # Absolute wall-clock varies across machines; the gate is meant to
    # catch order-of-magnitude slips (an accidental O(n^2) path), not
    # noise.
    limit=$((base_ms + base_ms / 4))
    if [ "$best_ms" -gt "$limit" ]; then
        fail "sweep ${best_ms} ms exceeds best baseline ${base_ms} ms by >25% (limit ${limit} ms)"
    fi
    echo "bench_perf: regression gate OK (${best_ms} ms <= ${limit} ms)"
fi
