#!/bin/sh
# Chaos harness for the crash-safe sweep orchestration (DESIGN.md §4e):
# injects the failures the supervisor exists to survive — worker
# crashes, torn worker output, the supervisor itself SIGKILLed
# mid-campaign, a shard cache truncated between runs — and asserts the
# campaign always converges to a merged cache byte-identical to the
# committed last_bench_cache.csv (and a divergence report identical to
# an uninterrupted run's). Finishes with the warm-resume check: a
# campaign whose parts all verify must skip every shard and simulate
# nothing.
#
# Usage: scripts/chaos_sweep.sh    (from the repo root)
#
# Exit status: 0 when every scenario converged byte-identically;
# nonzero (with a FAILED line) otherwise.
set -u

cd "$(dirname "$0")/.."
repo=$(pwd)

fail() {
    echo "chaos_sweep: FAILED: $1" >&2
    exit 1
}

cmake -B build-perf -S . -DCMAKE_BUILD_TYPE=Release >/dev/null ||
    fail "configure"
cmake --build build-perf -j --target last_sweep >/dev/null ||
    fail "build"
sweep=$repo/build-perf/tools/last_sweep

tmp=$(mktemp -d /tmp/last_chaos_XXXXXX) || fail "mktemp"
trap 'rm -rf "$tmp"' EXIT INT TERM

events() { # events DIR EVENT -> count of journal lines with that event
    if [ -f "$1/journal.jsonl" ]; then
        grep -c "\"event\":\"$2\"" "$1/journal.jsonl" || true
    else
        echo 0
    fi
}

# ---------------------------------------------------------------- 1 --
# Reference: an uninterrupted campaign. Its merged cache must be
# byte-identical to the committed sweep artifact, which every chaos
# scenario below is then measured against.
echo "chaos_sweep: [1/5] reference uninterrupted campaign"
"$sweep" orchestrate --shards 2 --work-dir "$tmp/ref" \
    --out "$tmp/ref/merged.csv" --diverge "$tmp/ref/diverge.json" \
    >/dev/null 2>&1 || fail "reference campaign"
cmp -s "$tmp/ref/merged.csv" last_bench_cache.csv ||
    fail "reference merge differs from committed last_bench_cache.csv"

# ---------------------------------------------------------------- 2 --
# Worker chaos: shard 0's first attempt crashes at startup (SIGKILL —
# the atomic writer guarantees it leaves nothing behind); shard 1's
# first attempt completes, then its output is truncated mid-file and
# it exits 0 anyway (a lying exit status over a torn artifact). The
# supervisor must distrust both — crash retried, truncation caught by
# verification — and the retries converge byte-identically.
echo "chaos_sweep: [2/5] worker crash + torn output"
cat > "$tmp/chaos.sh" <<'EOF'
#!/bin/sh
# argv: $1 = real worker, $2... = its argv; $7 is the --out path.
real="$1"; shift
if [ "${LAST_CHAOS_ATTEMPT:-0}" = 1 ]; then
    if [ "${LAST_CHAOS_SHARD:-x}" = 0 ]; then
        kill -9 $$
    fi
    if [ "${LAST_CHAOS_SHARD:-x}" = 1 ]; then
        "$real" "$@" || exit $?
        out="$6"
        half=$(( $(wc -c < "$out") / 2 ))
        head -c "$half" "$out" > "$out.torn" && mv "$out.torn" "$out"
        exit 0
    fi
fi
exec "$real" "$@"
EOF
chmod +x "$tmp/chaos.sh"
"$sweep" orchestrate --shards 2 --work-dir "$tmp/chaos" \
    --out "$tmp/chaos/merged.csv" --diverge "$tmp/chaos/diverge.json" \
    --chaos-exec "$tmp/chaos.sh" --backoff-ms 10 --poll-ms 10 \
    >/dev/null 2>&1 || fail "chaos campaign did not converge"
cmp -s "$tmp/chaos/merged.csv" last_bench_cache.csv ||
    fail "chaos merge differs from committed last_bench_cache.csv"
cmp -s "$tmp/chaos/diverge.json" "$tmp/ref/diverge.json" ||
    fail "chaos divergence report differs from the reference"
[ "$(events "$tmp/chaos" failed)" -ge 2 ] ||
    fail "journal did not record both injected failures"

# ---------------------------------------------------------------- 3 --
# Supervisor killed mid-campaign: SIGKILL the supervisor once the
# journal records the first shard as done (reaping its orphaned
# workers via the pids the journal recorded), then --resume. The
# finished shard's cache verifies and is skipped; only the unfinished
# one re-runs.
echo "chaos_sweep: [3/5] supervisor SIGKILL mid-campaign + resume"
"$sweep" orchestrate --shards 2 --work-dir "$tmp/kill" \
    --out "$tmp/kill/merged.csv" --poll-ms 10 >/dev/null 2>&1 &
pid=$!
i=0
while [ "$(events "$tmp/kill" done)" -lt 1 ]; do
    kill -0 "$pid" 2>/dev/null || fail "supervisor exited before kill"
    i=$((i + 1))
    [ "$i" -le 600 ] || fail "no shard finished within 60s"
    sleep 0.1
done
kill -9 "$pid" 2>/dev/null
wait "$pid" 2>/dev/null
sed -n 's/.*"pid":\([0-9][0-9]*\).*/\1/p' "$tmp/kill/journal.jsonl" |
    xargs -r kill -9 2>/dev/null
sleep 0.2 # let any just-shot orphan disappear before the resume
[ -e "$tmp/kill/merged.csv" ] &&
    fail "merged cache exists even though the supervisor was killed"
"$sweep" orchestrate --shards 2 --work-dir "$tmp/kill" \
    --out "$tmp/kill/merged.csv" --resume >/dev/null 2>&1 ||
    fail "resume after supervisor kill"
cmp -s "$tmp/kill/merged.csv" last_bench_cache.csv ||
    fail "post-kill resume differs from committed last_bench_cache.csv"
[ "$(events "$tmp/kill" skipped)" -ge 1 ] ||
    fail "resume re-ran a shard whose cache verified"

# ---------------------------------------------------------------- 4 --
# Torn shard cache between runs: truncate one verified part, --resume.
# The strict loader rejects the torn part (the v6 eof trailer makes a
# cut at a row boundary detectable), that shard alone re-runs, and the
# merge is byte-identical again.
echo "chaos_sweep: [4/5] truncated shard cache + resume"
half=$(( $(wc -c < "$tmp/kill/part_0.csv") / 2 ))
head -c "$half" "$tmp/kill/part_0.csv" > "$tmp/kill/part_0.torn" &&
    mv "$tmp/kill/part_0.torn" "$tmp/kill/part_0.csv"
before_running=$(events "$tmp/kill" running)
"$sweep" orchestrate --shards 2 --work-dir "$tmp/kill" \
    --out "$tmp/kill/merged.csv" --resume >/dev/null 2>&1 ||
    fail "resume after part truncation"
cmp -s "$tmp/kill/merged.csv" last_bench_cache.csv ||
    fail "post-truncation resume differs from committed cache"
after_running=$(events "$tmp/kill" running)
[ "$((after_running - before_running))" -eq 1 ] ||
    fail "expected exactly one shard re-run, got $((after_running - before_running))"

# ---------------------------------------------------------------- 5 --
# Warm resume: every part verifies, so the campaign must skip both
# shards and spawn no worker at all — the crash-free fast path.
echo "chaos_sweep: [5/5] warm resume simulates nothing"
before_running=$(events "$tmp/kill" running)
"$sweep" orchestrate --shards 2 --work-dir "$tmp/kill" \
    --out "$tmp/kill/merged.csv" --resume >/dev/null 2>&1 ||
    fail "warm resume"
after_running=$(events "$tmp/kill" running)
[ "$after_running" -eq "$before_running" ] ||
    fail "warm resume spawned a worker"
[ "$(events "$tmp/kill" skipped)" -ge 3 ] ||
    fail "warm resume did not skip both shards"
cmp -s "$tmp/kill/merged.csv" last_bench_cache.csv ||
    fail "warm resume changed the merged cache"

# Bonus: permanent failure surfaces as exit 2 (quarantine rows), never
# as silence. The always-crashing worker burns no simulator time.
cat > "$tmp/die.sh" <<'EOF'
#!/bin/sh
kill -9 $$
EOF
chmod +x "$tmp/die.sh"
"$sweep" orchestrate --shards 2 --work-dir "$tmp/doomed" \
    --out "$tmp/doomed/merged.csv" --chaos-exec "$tmp/die.sh" \
    --max-attempts 2 --backoff-ms 5 --poll-ms 5 >/dev/null 2>&1
rc=$?
[ "$rc" -eq 2 ] ||
    fail "doomed campaign exited $rc, expected 2 (quarantine rows)"
grep -q "worker-crash" "$tmp/doomed/merged.csv" ||
    fail "doomed merge lacks synthesized worker-crash quarantine rows"

echo "chaos_sweep: OK"
