#!/bin/sh
# Tier-1 verification: the full test suite on a regular build, the
# concurrency-sensitive suites again under ThreadSanitizer with a
# multi-worker pool, and the fault-injection/error-path suites under
# AddressSanitizer+UBSan (exception unwinding through the watchdog and
# quarantine machinery is where lifetime bugs hide).
#
# Every sub-suite runs even when an earlier one fails; the script exits
# nonzero if ANY failed, so CI cannot green-light a partial pass.
#
# Usage: scripts/tier1.sh    (from the repo root)
#        LAST_TIER1_PERF=1 scripts/tier1.sh
#            additionally runs the perf-regression smoke
#            (scripts/bench_perf.sh --quick, gated against the newest
#            committed BENCH_*.json) — opt-in because wall-clock gating
#            only means something on a quiet machine.
set -u

cd "$(dirname "$0")/.."

status=0
fail() {
    echo "tier1: FAILED: $1" >&2
    status=1
}

# Regular build + full suite. A broken build makes every later stage
# meaningless, so only configuration/build errors abort early.
cmake -B build -S . || exit 1
cmake --build build -j || exit 1
(cd build && ctest --output-on-failure -j) || fail "full suite"

# TSan pass: build only the test binary and run the parallel-driver,
# sweep-quarantine, and differential suites with 4 workers forced via
# LAST_JOBS. The PTXL legs (PtxlExecEngine drives the predecoded
# engine through the sweep pool; the three-way differentials overlap
# HSAIL/GCN3/PTXL runs on the same pool) ride here too.
if cmake -B build-tsan -S . -DLAST_TSAN=ON &&
    cmake --build build-tsan -j --target last_tests; then
    LAST_JOBS=4 ./build-tsan/tests/last_tests \
        --gtest_filter='ParallelDriver.*:SweepQuarantine.*:FastForward.*:FunctionalMemoryFootprint.*:ExecEngine.*:ServeSocket.*:PtxlExecEngine.*:RandomKernelDifferential.*:Table5/WorkloadDifferential.*' ||
        fail "TSan suite"
else
    fail "TSan build"
fi

# ASan+UBSan pass: the fault-injection, watchdog, and logging/error
# suites, which exercise every throw path in the simulator — plus the
# PTXL legs (warp-split stack, convergence barriers, scoreboard) and
# the stress-differential job (three-way cross-ISA agreement and the
# N×N golden signatures), whose lane-mask/stack manipulation is where
# out-of-bounds bugs would live.
if cmake -B build-asan -S . -DLAST_ASAN=ON &&
    cmake --build build-asan -j --target last_tests; then
    ./build-asan/tests/last_tests \
        --gtest_filter='FaultPlan.*:Watchdog.*:FaultSensitivity.*:MemoryGuards.*:IsaAgreement.*:SweepQuarantine.*:Logging.*:TornInputFuzz.*:Orchestrate.*:OrchestrateCampaign.*:ExecEngine.*:ServeProtocol.*:ServeCore.*:ServeQuarantine.*:Ptxl*:DivergenceSchemaV2.*:StressWorkloads.*' ||
        fail "ASan/UBSan suite"
else
    fail "ASan build"
fi

# Opt-in perf smoke: Release sweep + microbenches, byte-identity of
# the regenerated result cache, and the >25% regression gate.
if [ "${LAST_TIER1_PERF:-0}" = "1" ]; then
    baseline=$(ls BENCH_*.json 2>/dev/null | sort -V | tail -1)
    if [ -n "$baseline" ]; then
        scripts/bench_perf.sh --quick --check "$baseline" \
            /tmp/tier1_bench_perf.json || fail "perf smoke"
    else
        fail "perf smoke: no committed BENCH_*.json baseline"
    fi
fi

if [ "$status" -eq 0 ]; then
    echo "tier1: OK"
else
    echo "tier1: FAILED (see above)" >&2
fi
exit "$status"
