#!/bin/sh
# Tier-1 verification: the full test suite on a regular build, then the
# concurrency-sensitive suites again under ThreadSanitizer with a
# multi-worker pool, so data races in the parallel experiment driver
# fail CI instead of corrupting sweeps.
#
# Usage: scripts/tier1.sh    (from the repo root)
set -eu

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

# TSan pass: build only the test binary and run the parallel-driver and
# differential suites with 4 workers forced via LAST_JOBS.
cmake -B build-tsan -S . -DLAST_TSAN=ON
cmake --build build-tsan -j --target last_tests
LAST_JOBS=4 ./build-tsan/tests/last_tests \
    --gtest_filter='ParallelDriver.*:FastForward.*:FunctionalMemoryFootprint.*'

echo "tier1: OK"
