/**
 * @file
 * Quickstart: write one kernel, run it at both ISA levels, compare.
 *
 *   $ ./build/examples/quickstart
 *
 * Demonstrates the whole public API surface in ~100 lines:
 * KernelBuilder (the single-source front end), compactIlRegisters
 * (the HLC's register allocation), finalize (IL -> GCN3), Runtime
 * (memory + dispatch), and the per-CU statistics.
 */

#include <cstdio>
#include <vector>

#include "finalizer/finalizer.hh"
#include "finalizer/regalloc.hh"
#include "hsail/builder.hh"
#include "runtime/runtime.hh"

using namespace last;
using namespace last::hsail;

namespace
{

/** c[i] = a[i] * a[i] + b[i], one work-item per element. */
IlKernel
makeSaxpyish()
{
    KernelBuilder kb("quickstart");
    kb.setKernargBytes(24);
    Val a = kb.ldKernarg(DataType::U64, 0);
    Val b = kb.ldKernarg(DataType::U64, 8);
    Val c = kb.ldKernarg(DataType::U64, 16);
    Val gid = kb.workitemAbsId();
    Val off = kb.cvt(DataType::U64, kb.mul(gid, kb.immU32(4)));
    Val va = kb.ldGlobal(DataType::F32, kb.add(a, off));
    Val vb = kb.ldGlobal(DataType::F32, kb.add(b, off));
    kb.stGlobal(kb.fma_(va, va, vb), kb.add(c, off));
    return kb.build();
}

} // namespace

int
main()
{
    const unsigned n = 4096;

    for (IsaKind isa : {IsaKind::HSAIL, IsaKind::GCN3}) {
        runtime::Runtime rt; // a fresh simulated process (Table 4 GPU)

        // Build once; register-allocate the IL; finalize for GCN3.
        IlKernel il = makeSaxpyish();
        finalizer::compactIlRegisters(il);
        std::unique_ptr<arch::KernelCode> gcn;
        arch::KernelCode *code = il.code.get();
        if (isa == IsaKind::GCN3) {
            gcn = finalizer::finalize(il, rt.config());
            code = gcn.get();
        }

        // Device buffers.
        Addr a = rt.allocGlobal(n * 4), b = rt.allocGlobal(n * 4),
             c = rt.allocGlobal(n * 4);
        std::vector<float> ha(n), hb(n);
        for (unsigned i = 0; i < n; ++i) {
            ha[i] = float(i) * 0.25f;
            hb[i] = 1.0f;
        }
        rt.writeGlobal(a, ha.data(), n * 4);
        rt.writeGlobal(b, hb.data(), n * 4);

        struct Args
        {
            uint64_t a, b, c;
        } args{a, b, c};
        Cycle cycles = rt.dispatch(*code, n, 256, &args, sizeof(args));

        std::vector<float> hc(n);
        rt.readGlobal(c, hc.data(), n * 4);
        bool ok = true;
        for (unsigned i = 0; i < n; ++i)
            ok = ok && hc[i] == ha[i] * ha[i] + hb[i];

        auto &gpu = rt.gpu();
        std::printf("=== %s ===\n", isaName(isa));
        std::printf("  static insts     %zu (%llu bytes)\n",
                    code->numInsts(),
                    (unsigned long long)code->codeBytes());
        std::printf("  cycles           %llu\n",
                    (unsigned long long)cycles);
        std::printf("  dynamic insts    %.0f (scalar %.0f, waitcnt "
                    "%.0f)\n",
                    gpu.sumCuStat("dynInsts"),
                    gpu.sumCuStat("saluInsts") +
                        gpu.sumCuStat("smemInsts"),
                    gpu.sumCuStat("waitcntInsts"));
        std::printf("  result           %s\n\n",
                    ok ? "verified" : "WRONG");
        if (isa == IsaKind::GCN3)
            std::printf("GCN3 disassembly:\n%s\n",
                        code->disassemble().c_str());
        else
            std::printf("HSAIL disassembly:\n%s\n",
                        code->disassemble().c_str());
    }
    return 0;
}
