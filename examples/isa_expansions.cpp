/**
 * @file
 * ISA-expansion explorer: prints the paper's Table 1 / 2 / 3 case
 * studies side by side — one IL instruction against the GCN3 sequence
 * the finalizer must emit once the ABI and the real ISA semantics are
 * in play.
 */

#include <cstdio>

#include "finalizer/finalizer.hh"
#include "finalizer/regalloc.hh"
#include "hsail/builder.hh"

using namespace last;
using namespace last::hsail;

namespace
{

void
show(const char *title, IlKernel il)
{
    finalizer::compactIlRegisters(il);
    finalizer::FinalizeStats st;
    auto gcn = finalizer::finalize(il, GpuConfig{}, &st);
    std::printf("==================================================\n");
    std::printf("%s\n", title);
    std::printf("==================================================\n");
    std::printf("HSAIL (%zu insts, %llu bytes):\n%s\n",
                il.code->numInsts(),
                (unsigned long long)il.code->codeBytes(),
                il.code->disassemble().c_str());
    std::printf("GCN3 (%zu insts, %llu bytes; %u waitcnt, %u s_nop):"
                "\n%s\n",
                gcn->numInsts(),
                (unsigned long long)gcn->codeBytes(),
                st.waitcntInserted, st.nopsInserted,
                gcn->disassemble().c_str());
}

} // namespace

int
main()
{
    {
        KernelBuilder kb("workitemabsid");
        Val gid = kb.workitemAbsId();
        kb.stGlobal(gid, kb.immU64(0x1000));
        show("Table 1: obtaining the work-item id\n"
             "(one IL intrinsic -> AQL packet load, bitfield extract,\n"
             " multiply by the workgroup id, add the lane id)",
             kb.build());
    }
    {
        KernelBuilder kb("kernarg");
        kb.setKernargBytes(8);
        Val p = kb.ldKernarg(DataType::U64, 0);
        Val v = kb.ldGlobal(DataType::U32, p);
        kb.stGlobal(v, p, 4);
        show("Table 2: kernel argument access\n"
             "(the ABI places the kernarg base in s[6:7]; the flat\n"
             " address needs the scalar base moved into VGPRs)",
             kb.build());
    }
    {
        KernelBuilder kb("fdiv64");
        Val q = kb.div(kb.immF64(2.0), kb.immF64(3.0));
        kb.stGlobal(q, kb.immU64(0x1000));
        show("Table 3: 64-bit floating-point division\n"
             "(one IL div -> scale, reciprocal estimate, two\n"
             " Newton-Raphson refinements, fmas, fixup)",
             kb.build());
    }
    return 0;
}
