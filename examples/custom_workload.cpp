/**
 * @file
 * Writing your own dual-ISA experiment: a histogram kernel built with
 * the KernelBuilder DSL (divergent control flow + LDS + atomics), run
 * at both ISA levels with the full statistics dump — the template to
 * copy when adding a workload.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "common/random.hh"
#include "finalizer/finalizer.hh"
#include "finalizer/regalloc.hh"
#include "hsail/builder.hh"
#include "runtime/runtime.hh"

using namespace last;
using namespace last::hsail;

namespace
{

/** Per work-item: bucket its input into 4 bins via divergent ifs and
 *  atomically bump a global counter. */
IlKernel
makeHistogram()
{
    KernelBuilder kb("histogram");
    kb.setKernargBytes(16);
    Val in = kb.ldKernarg(DataType::U64, 0);
    Val bins = kb.ldKernarg(DataType::U64, 8);
    Val gid = kb.workitemAbsId();
    Val off = kb.cvt(DataType::U64, kb.mul(gid, kb.immU32(4)));
    Val v = kb.ldGlobal(DataType::U32, kb.add(in, off));
    Val bucket = kb.shr(v, kb.immU32(30)); // top two bits -> 0..3
    Val addr = kb.add(bins, kb.cvt(DataType::U64,
                                   kb.mul(bucket, kb.immU32(4))));
    kb.atomicAddGlobal(addr, kb.immU32(1));
    return kb.build();
}

} // namespace

int
main()
{
    const unsigned n = 2048;
    for (IsaKind isa : {IsaKind::HSAIL, IsaKind::GCN3}) {
        runtime::Runtime rt;
        IlKernel il = makeHistogram();
        finalizer::compactIlRegisters(il);
        std::unique_ptr<arch::KernelCode> gcn;
        arch::KernelCode *code = il.code.get();
        if (isa == IsaKind::GCN3) {
            gcn = finalizer::finalize(il, rt.config());
            code = gcn.get();
        }

        Addr in = rt.allocGlobal(n * 4);
        Addr bins = rt.allocGlobal(16);
        Rng rng(2026);
        std::vector<uint32_t> data(n);
        for (auto &d : data)
            d = uint32_t(rng.next());
        rt.writeGlobal(in, data.data(), n * 4);

        struct Args
        {
            uint64_t in, bins;
        } args{in, bins};
        rt.dispatch(*code, n, 256, &args, sizeof(args));

        std::printf("=== %s ===\nbins:", isaName(isa));
        unsigned total = 0;
        for (unsigned b = 0; b < 4; ++b) {
            uint32_t c = rt.readGlobal<uint32_t>(bins + 4 * b);
            total += c;
            std::printf(" %u", c);
        }
        std::printf("  (sum %u of %u)\n", total, n);

        // The full gem5-style statistics dump.
        std::printf("--- statistics ---\n");
        rt.printStats(std::cout);
        std::printf("\n");
    }
    return 0;
}
