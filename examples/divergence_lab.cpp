/**
 * @file
 * Divergence lab: the paper's Figure 3 walkthrough.
 *
 * An if / else-if where work-items take three different paths. At the
 * IL level the simulator manages divergence with a reconvergence
 * stack, and every divergence/reconvergence jump flushes the
 * instruction buffer; at the machine-ISA level the finalizer lays the
 * CFG out straight-line under exec-mask predication and the front end
 * never stalls.
 */

#include <cstdio>

#include "finalizer/finalizer.hh"
#include "finalizer/regalloc.hh"
#include "hsail/builder.hh"
#include "runtime/runtime.hh"

using namespace last;
using namespace last::hsail;

namespace
{

/** Figure 3(a): out[i] = (i < lo || i >= hi) ? 84 : 90. */
IlKernel
makeFig3()
{
    KernelBuilder kb("fig3_if_else_if");
    kb.setKernargBytes(16);
    Val out = kb.ldKernarg(DataType::U64, 0);
    Val lo = kb.ldKernarg(DataType::U32, 8);
    Val hi = kb.ldKernarg(DataType::U32, 12);
    Val gid = kb.workitemAbsId();
    Val dst = kb.add(out, kb.cvt(DataType::U64,
                                 kb.mul(gid, kb.immU32(4))));
    Val c1 = kb.cmp(CmpOp::Lt, gid, lo);
    kb.ifBegin(c1);
    kb.stGlobal(kb.immU32(84), dst);
    kb.ifElse();
    {
        Val c2 = kb.cmp(CmpOp::Lt, gid, hi);
        kb.ifBegin(c2);
        kb.stGlobal(kb.immU32(90), dst);
        kb.ifElse();
        kb.stGlobal(kb.immU32(84), dst);
        kb.ifEnd();
    }
    kb.ifEnd();
    return kb.build();
}

} // namespace

int
main()
{
    std::printf("Figure 3: if / else-if under the two abstractions\n");
    std::printf("(work-items 0..1 -> 84, 2..3 -> 90, 4.. -> 84)\n\n");

    for (IsaKind isa : {IsaKind::HSAIL, IsaKind::GCN3}) {
        runtime::Runtime rt;
        IlKernel il = makeFig3();
        finalizer::compactIlRegisters(il);
        std::unique_ptr<arch::KernelCode> gcn;
        arch::KernelCode *code = il.code.get();
        if (isa == IsaKind::GCN3) {
            gcn = finalizer::finalize(il, rt.config());
            code = gcn.get();
        }

        Addr out = rt.allocGlobal(64 * 4);
        struct Args
        {
            uint64_t out;
            uint32_t lo, hi;
        } args{out, 2, 4};
        rt.dispatch(*code, 64, 64, &args, sizeof(args));

        std::printf("=== %s ===\n%s\n", isaName(isa),
                    code->disassemble().c_str());
        std::printf("first five work-items:");
        for (unsigned i = 0; i < 5; ++i)
            std::printf(" %u", rt.readGlobal<uint32_t>(out + 4 * i));
        std::printf("\nIB flushes: %.0f   branch insts issued: %.0f\n",
                    rt.gpu().sumCuStat("ibFlushes"),
                    rt.gpu().sumCuStat("branchInsts"));
        std::printf("(the RS pops force front-end redirects under "
                    "HSAIL; GCN3's bypass arcs fall through)\n\n");
    }
    return 0;
}
