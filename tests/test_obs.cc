/**
 * @file
 * Observability-layer tests (obs/): the Chrome trace serializer emits
 * well-formed JSON that survives a round-trip through a real parser,
 * the stats exporter matches the in-memory registry exactly, the
 * divergence reporter reproduces the paper's accurate-vs-divergent
 * classification on known statistics, and — the load-bearing invariant
 * — tracing on/off produces bit-identical AppResults.
 */

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <random>
#include <sstream>

#include <gtest/gtest.h>

#include "common/error.hh"
#include "obs/divergence.hh"
#include "obs/json.hh"
#include "obs/stats_export.hh"
#include "obs/trace.hh"
#include "sim/experiment.hh"

using namespace last;

namespace
{

/** Shrunk problem sizes keep the differential runs fast (same factor
 *  the fault suite uses). */
constexpr double TestScale = 0.25;

/**
 * A strict recursive-descent JSON parser (validation only). If this
 * accepts a document, any real JSON consumer (chrome://tracing,
 * Perfetto, python json) will too — that is the round-trip the trace
 * and export writers are tested against.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &s)
        : p(s.c_str()), end(s.c_str() + s.size())
    {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return p == end;
    }

  private:
    const char *p;
    const char *end;

    void
    skipWs()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                           *p == '\r'))
            ++p;
    }

    bool eat(char c) { return p < end && *p == c ? (++p, true) : false; }

    bool
    literal(const char *s)
    {
        size_t n = std::strlen(s);
        if (size_t(end - p) < n || std::strncmp(p, s, n) != 0)
            return false;
        p += n;
        return true;
    }

    bool
    string()
    {
        if (!eat('"'))
            return false;
        while (p < end && *p != '"') {
            if (*p == '\\') {
                ++p;
                if (p >= end)
                    return false;
                if (*p == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++p;
                        if (p >= end || !std::isxdigit((unsigned char)*p))
                            return false;
                    }
                } else if (!std::strchr("\"\\/bfnrt", *p)) {
                    return false;
                }
                ++p;
            } else if ((unsigned char)*p < 0x20) {
                return false; // unescaped control character
            } else {
                ++p;
            }
        }
        return eat('"');
    }

    bool
    number()
    {
        const char *start = p;
        if (p < end && *p == '-')
            ++p;
        if (p >= end || !std::isdigit((unsigned char)*p))
            return false;
        while (p < end && std::isdigit((unsigned char)*p))
            ++p;
        if (p < end && *p == '.') {
            ++p;
            if (p >= end || !std::isdigit((unsigned char)*p))
                return false;
            while (p < end && std::isdigit((unsigned char)*p))
                ++p;
        }
        if (p < end && (*p == 'e' || *p == 'E')) {
            ++p;
            if (p < end && (*p == '+' || *p == '-'))
                ++p;
            if (p >= end || !std::isdigit((unsigned char)*p))
                return false;
            while (p < end && std::isdigit((unsigned char)*p))
                ++p;
        }
        return p > start;
    }

    bool
    value()
    {
        skipWs();
        if (p >= end)
            return false;
        switch (*p) {
          case '{': {
            ++p;
            skipWs();
            if (eat('}'))
                return true;
            do {
                skipWs();
                if (!string())
                    return false;
                skipWs();
                if (!eat(':') || !value())
                    return false;
                skipWs();
            } while (eat(','));
            return eat('}');
          }
          case '[': {
            ++p;
            skipWs();
            if (eat(']'))
                return true;
            do {
                if (!value())
                    return false;
                skipWs();
            } while (eat(','));
            return eat(']');
          }
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }
};

/** Pull the number following `"key":` after the first occurrence of
 *  `anchor` (writer-format-aware extraction for spot checks). */
double
numberAfter(const std::string &json, const std::string &anchor,
            const std::string &key)
{
    size_t at = json.find(anchor);
    EXPECT_NE(at, std::string::npos) << "missing " << anchor;
    if (at == std::string::npos)
        return -1;
    size_t k = json.find("\"" + key + "\":", at);
    EXPECT_NE(k, std::string::npos) << "missing " << key;
    if (k == std::string::npos)
        return -1;
    return std::strtod(json.c_str() + k + key.size() + 3, nullptr);
}

/** Field-by-field AppResult equality (tracing must not perturb any of
 *  this — the same contract the artifact-cache identity test uses). */
void
expectIdentical(const sim::AppResult &a, const sim::AppResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.isa, b.isa);
    EXPECT_EQ(a.verified, b.verified);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.dynInsts, b.dynInsts);
    EXPECT_EQ(a.valu, b.valu);
    EXPECT_EQ(a.salu, b.salu);
    EXPECT_EQ(a.vmem, b.vmem);
    EXPECT_EQ(a.smem, b.smem);
    EXPECT_EQ(a.lds, b.lds);
    EXPECT_EQ(a.branch, b.branch);
    EXPECT_EQ(a.waitcnt, b.waitcnt);
    EXPECT_EQ(a.misc, b.misc);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.vrfBankConflicts, b.vrfBankConflicts);
    EXPECT_DOUBLE_EQ(a.reuseMedian, b.reuseMedian);
    EXPECT_EQ(a.instFootprint, b.instFootprint);
    EXPECT_EQ(a.ibFlushes, b.ibFlushes);
    EXPECT_DOUBLE_EQ(a.readUniq, b.readUniq);
    EXPECT_DOUBLE_EQ(a.writeUniq, b.writeUniq);
    EXPECT_DOUBLE_EQ(a.vrfUniq, b.vrfUniq);
    EXPECT_EQ(a.dataFootprint, b.dataFootprint);
    EXPECT_DOUBLE_EQ(a.simdUtil, b.simdUtil);
    EXPECT_EQ(a.l1iMisses, b.l1iMisses);
    EXPECT_EQ(a.l1iHits, b.l1iHits);
    EXPECT_EQ(a.hazardViolations, b.hazardViolations);
    EXPECT_EQ(a.scoreboardStalls, b.scoreboardStalls);
    EXPECT_EQ(a.waitcntStalls, b.waitcntStalls);
    EXPECT_EQ(a.ibEmptyStalls, b.ibEmptyStalls);
    EXPECT_EQ(a.fuConflictStalls, b.fuConflictStalls);
    EXPECT_EQ(a.coalescedLines, b.coalescedLines);
    EXPECT_EQ(a.busyCycles, b.busyCycles);
    ASSERT_EQ(a.launches.size(), b.launches.size());
    for (size_t i = 0; i < a.launches.size(); ++i) {
        EXPECT_EQ(a.launches[i].kernel, b.launches[i].kernel);
        EXPECT_EQ(a.launches[i].cycles, b.launches[i].cycles);
        EXPECT_EQ(a.launches[i].instsIssued, b.launches[i].instsIssued);
    }
}

} // namespace

TEST(ObsJson, EscapeAndNumberFormats)
{
    EXPECT_EQ(obs::jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(obs::jsonEscape(std::string("x\x01y")), "x\\u0001y");
    EXPECT_EQ(obs::jsonNumber(42), "42");
    EXPECT_EQ(obs::jsonNumber(-3), "-3");
    EXPECT_EQ(obs::jsonNumber(0), "0");
    // Round-trip precision for non-integers.
    double v = 0.1 + 0.2;
    EXPECT_DOUBLE_EQ(std::strtod(obs::jsonNumber(v).c_str(), nullptr), v);
    EXPECT_EQ(obs::jsonNumber(1.0 / 0.0), "0"); // non-finite degrades
}

TEST(ObsTrace, StreamBuffersAndCaps)
{
    obs::TraceSink sink(4);
    obs::TraceStream *s = sink.makeStream("cu_0", obs::TidCuBase);
    for (unsigned i = 0; i < 10; ++i)
        s->emit(obs::TraceKind::IbFlush, i, 0, i, 1);
    EXPECT_EQ(s->events().size(), 4u);
    EXPECT_EQ(s->dropped(), 6u);
    EXPECT_EQ(sink.totalEvents(), 4u);
    EXPECT_EQ(sink.totalDropped(), 6u);
    EXPECT_EQ(s->tid(), obs::TidCuBase);
    EXPECT_EQ(s->threadName(), "cu_0");
    // String interning dedups.
    EXPECT_EQ(s->intern("kern"), s->intern("kern"));
    EXPECT_NE(s->intern("kern"), s->intern("other"));
}

TEST(ObsTrace, ChromeJsonIsWellFormed)
{
    obs::TraceSink sink;
    obs::TraceStream *cu = sink.makeStream("cu_0", obs::TidCuBase);
    obs::TraceStream *rt = sink.makeStream("runtime", obs::TidRuntime);
    // One event of every kind, including the string-carrying ones and
    // a name that needs escaping.
    cu->emit(obs::TraceKind::InstIssue, 100, 4, 3,
             (0x40u << 4) | uint64_t(obs::InstClass::VAlu));
    cu->emit(obs::TraceKind::IbFlush, 101, 0, 3, 2);
    cu->emit(obs::TraceKind::RsPush, 102, 0, 3, 1);
    cu->emit(obs::TraceKind::RsPop, 103, 0, 3, 0);
    cu->emit(obs::TraceKind::DepStall, 104, 7, 3, 1);
    cu->emit(obs::TraceKind::WfStart, 105, 0, 3, 9);
    cu->emit(obs::TraceKind::WfEnd, 106, 0, 3, 9);
    cu->emit(obs::TraceKind::CacheMiss, 107, 160, 0xdeadbeef, 1);
    cu->emit(obs::TraceKind::IdleSkip, 108, 50, 50);
    rt->emit(obs::TraceKind::KernelDispatch, 0, 500,
             rt->intern("vec\"add"));
    rt->emit(obs::TraceKind::Watchdog, 600, 0, rt->intern("stalled"));

    obs::TraceMeta meta;
    meta.workload = "VecAdd";
    meta.isa = "HSAIL";
    meta.scale = 0.25;
    std::ostringstream os;
    sink.writeChromeTrace(os, meta);
    std::string json = os.str();

    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    // Structural spot checks a JSON validator cannot make.
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"VecAdd/HSAIL\""), std::string::npos);
    EXPECT_NE(json.find("\"waitcnt_stall\""), std::string::npos);
    EXPECT_NE(json.find("kernel vec\\\"add"), std::string::npos);
    EXPECT_NE(json.find("\"valu\""), std::string::npos);
    EXPECT_EQ(numberAfter(json, "\"name\":\"valu\"", "pc"), 0x40);
}

TEST(ObsTrace, TracedRunProducesEventsAndValidJson)
{
    if (!obs::tracePointsCompiled())
        GTEST_SKIP() << "trace points compiled out";
    obs::TraceSink sink;
    GpuConfig cfg;
    cfg.trace = &sink;
    sim::AppResult r =
        sim::runApp("VecAdd", IsaKind::GCN3, cfg, {TestScale});
    ASSERT_TRUE(r.verified);

    // Every issued instruction got an InstIssue span (stream caps not
    // hit at this scale), plus dispatch/WF events.
    uint64_t instEvents = 0, wfStarts = 0, dispatches = 0;
    for (size_t i = 0; i < sink.numStreams(); ++i) {
        for (const obs::TraceEvent &e : sink.stream(i).events()) {
            instEvents += e.kind == obs::TraceKind::InstIssue;
            wfStarts += e.kind == obs::TraceKind::WfStart;
            dispatches += e.kind == obs::TraceKind::KernelDispatch;
        }
    }
    EXPECT_EQ(sink.totalDropped(), 0u);
    EXPECT_EQ(instEvents, r.dynInsts);
    EXPECT_GT(wfStarts, 0u);
    EXPECT_EQ(dispatches, r.launches.size());

    obs::TraceMeta meta;
    meta.workload = r.workload;
    meta.isa = "GCN3";
    meta.scale = TestScale;
    std::ostringstream os;
    sink.writeChromeTrace(os, meta);
    EXPECT_TRUE(JsonChecker(os.str()).valid());
}

TEST(ObsTrace, TracingOnOffIsStatisticIdentical)
{
    if (!obs::tracePointsCompiled())
        GTEST_SKIP() << "trace points compiled out";
    for (IsaKind isa : {IsaKind::HSAIL, IsaKind::GCN3}) {
        sim::AppResult plain =
            sim::runApp("VecAdd", isa, GpuConfig{}, {TestScale});
        obs::TraceSink sink;
        GpuConfig cfg;
        cfg.trace = &sink;
        sim::AppResult traced =
            sim::runApp("VecAdd", isa, cfg, {TestScale});
        EXPECT_GT(sink.totalEvents(), 0u);
        expectIdentical(plain, traced);
    }
}

TEST(ObsStatsExport, JsonMatchesRegistryExactly)
{
    std::string json;
    std::vector<std::pair<std::string, double>> expected;
    sim::runApp("VecAdd", IsaKind::HSAIL, GpuConfig{}, {TestScale},
                [&](runtime::Runtime &rt) {
                    obs::ExportMeta meta;
                    meta.workload = "VecAdd";
                    meta.isa = "HSAIL";
                    meta.scale = TestScale;
                    std::ostringstream os;
                    obs::writeStatsJson(os, rt, meta);
                    json = os.str();
                    for (const obs::StatRow &row : obs::flattenStats(rt))
                        expected.emplace_back(row.path,
                                              row.stat->value());
                });

    ASSERT_FALSE(json.empty());
    ASSERT_FALSE(expected.empty());
    EXPECT_TRUE(JsonChecker(json).valid());

    // Every stat in the registry appears with exactly its in-memory
    // value (jsonNumber round-trips doubles bit-exactly).
    for (const auto &[path, value] : expected) {
        double got =
            numberAfter(json, "\"path\":\"" + path + "\"", "value");
        EXPECT_DOUBLE_EQ(got, value) << path;
    }
    // The tree includes the root, the GPU, CU and cache groups.
    EXPECT_NE(json.find("sim.gpu.totalCycles"), std::string::npos);
    EXPECT_NE(json.find("sim.gpu.cu_0.dynInsts"), std::string::npos);
    EXPECT_NE(json.find("sim.gpu.l1d_0.misses"), std::string::npos);
    EXPECT_NE(json.find("\"kind\":\"histogram\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\":\"average\""), std::string::npos);
}

TEST(ObsStatsExport, CsvHasOneRowPerStat)
{
    std::string csv;
    size_t nstats = 0;
    sim::runApp("VecAdd", IsaKind::GCN3, GpuConfig{}, {TestScale},
                [&](runtime::Runtime &rt) {
                    obs::ExportMeta meta;
                    meta.workload = "VecAdd";
                    meta.isa = "GCN3";
                    std::ostringstream os;
                    obs::writeStatsCsv(os, rt, meta);
                    csv = os.str();
                    nstats = obs::flattenStats(rt).size();
                });
    ASSERT_GT(nstats, 0u);
    size_t lines = 0;
    for (char c : csv)
        lines += c == '\n';
    EXPECT_EQ(lines, nstats + 1); // header + one row per stat
    EXPECT_EQ(csv.rfind("workload,isa,scale,seed,fault_plan,path", 0),
              0u);
    EXPECT_NE(csv.find("sim.gpu.cu_0.dynInsts,scalar,"),
              std::string::npos);
}

TEST(ObsDivergence, RelDeltaRules)
{
    EXPECT_DOUBLE_EQ(obs::relDelta(0, 0), 0);     // both-zero never ranks
    EXPECT_DOUBLE_EQ(obs::relDelta(100, 100), 0);
    EXPECT_DOUBLE_EQ(obs::relDelta(100, 150), 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(obs::relDelta(0, 5), 1.0);   // appears-from-nothing
    EXPECT_DOUBLE_EQ(obs::relDelta(5, 0), 1.0);
    EXPECT_DOUBLE_EQ(obs::relDelta(-2, 2), 2.0);
}

TEST(ObsDivergence, FlagsKnownDivergentAndAccurateStats)
{
    auto [hsail, gcn3] = sim::runBoth("VecAdd", GpuConfig{}, {TestScale});
    obs::DivergenceReport r = obs::divergenceReport(hsail, gcn3);
    ASSERT_FALSE(r.failed);
    ASSERT_FALSE(r.entries.empty());

    // The paper's headline divergent statistic: the GCN3 dynamic
    // instruction stream carries waitcnt/nop/scalar overhead the IL
    // never sees (Figure 5).
    const obs::DivergenceEntry *dyn = r.find("dynInsts");
    ASSERT_NE(dyn, nullptr);
    EXPECT_TRUE(dyn->divergent)
        << "hsail=" << dyn->hsail << " gcn3=" << dyn->gcn3;
    EXPECT_GT(dyn->gcn3, dyn->hsail);
    EXPECT_EQ(dyn->paperExpectation, "divergent");

    // The paper's headline accurate statistic: SIMD utilization is a
    // property of the algorithm's control flow, not the encoding
    // (Table 6).
    const obs::DivergenceEntry *simd = r.find("simdUtil");
    ASSERT_NE(simd, nullptr);
    EXPECT_FALSE(simd->divergent)
        << "hsail=" << simd->hsail << " gcn3=" << simd->gcn3;
    EXPECT_EQ(simd->paperExpectation, "similar");

    // Ranking: descending relDelta, so dynInsts outranks simdUtil.
    size_t dynPos = size_t(dyn - r.entries.data());
    size_t simdPos = size_t(simd - r.entries.data());
    EXPECT_LT(dynPos, simdPos);
    for (size_t i = 1; i < r.entries.size(); ++i)
        EXPECT_GE(r.entries[i - 1].relDelta, r.entries[i].relDelta);

    // Serialized forms are well-formed.
    std::ostringstream js, txt;
    obs::writeDivergenceJson(js, r);
    obs::writeDivergenceText(txt, r);
    EXPECT_TRUE(JsonChecker(js.str()).valid()) << js.str();
    EXPECT_NE(txt.str().find("DIVERGENT"), std::string::npos);
    EXPECT_NE(txt.str().find("dynInsts"), std::string::npos);
}

TEST(ObsDivergence, SweepDriverBatchesWorkloads)
{
    // Two workloads through the runSweep-backed batch path.
    auto reports = obs::divergenceReports({"VecAdd", "ArrayBW"},
                                          GpuConfig{}, {TestScale});
    ASSERT_EQ(reports.size(), 2u);
    EXPECT_EQ(reports[0].workload, "VecAdd");
    EXPECT_EQ(reports[1].workload, "ArrayBW");
    for (const auto &r : reports) {
        EXPECT_FALSE(r.failed) << r.error;
        EXPECT_FALSE(r.entries.empty());
        const obs::DivergenceEntry *dyn = r.find("dynInsts");
        ASSERT_NE(dyn, nullptr);
        EXPECT_TRUE(dyn->divergent);
    }
}

TEST(ObsDivergence, QuarantinedRunFailsOnlyItsReport)
{
    sim::AppResult ok =
        sim::runApp("VecAdd", IsaKind::HSAIL, GpuConfig{}, {TestScale});
    sim::AppResult bad;
    bad.workload = "VecAdd";
    bad.isa = IsaKind::GCN3;
    bad.quarantined = true;
    bad.errorKind = "deadlock";
    bad.errorMessage = "watchdog";
    obs::DivergenceReport r = obs::divergenceReport(ok, bad);
    EXPECT_TRUE(r.failed);
    EXPECT_TRUE(r.entries.empty());
    EXPECT_NE(r.error.find("deadlock"), std::string::npos);
    std::ostringstream js;
    obs::writeDivergenceJson(js, r);
    EXPECT_TRUE(JsonChecker(js.str()).valid());
}

// ---------------------------------------------------------------------
// last-divergence-v2 schema: round-trip, v1 compat, torn input.
// ---------------------------------------------------------------------

namespace
{

/** Field-for-field equality of a report and its parsed round-trip.
 *  %.17g serialization must reproduce every double bit-exactly. */
void
expectReportsEqual(const obs::DivergenceReport &a,
                   const obs::DivergenceReport &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.scale, b.scale);
    EXPECT_EQ(a.threshold, b.threshold);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.error, b.error);
    ASSERT_EQ(a.isas, b.isas);
    ASSERT_EQ(a.entries.size(), b.entries.size());
    for (size_t i = 0; i < a.entries.size(); ++i) {
        const obs::DivergenceEntry &x = a.entries[i];
        const obs::DivergenceEntry &y = b.entries[i];
        SCOPED_TRACE(x.stat);
        EXPECT_EQ(x.stat, y.stat);
        EXPECT_EQ(x.figure, y.figure);
        ASSERT_EQ(x.values.size(), y.values.size());
        for (size_t k = 0; k < x.values.size(); ++k)
            EXPECT_EQ(x.values[k], y.values[k]);
        EXPECT_EQ(x.maxRelDelta, y.maxRelDelta);
        EXPECT_EQ(x.hsail, y.hsail);
        EXPECT_EQ(x.gcn3, y.gcn3);
        EXPECT_EQ(x.relDelta, y.relDelta);
        EXPECT_EQ(x.divergent, y.divergent);
        EXPECT_EQ(x.paperExpectation, y.paperExpectation);
        ASSERT_EQ(x.pairs.size(), y.pairs.size());
        for (size_t k = 0; k < x.pairs.size(); ++k) {
            const obs::DivergencePair &p = x.pairs[k];
            const obs::DivergencePair &q = y.pairs[k];
            EXPECT_EQ(p.a, q.a);
            EXPECT_EQ(p.b, q.b);
            EXPECT_EQ(p.va, q.va);
            EXPECT_EQ(p.vb, q.vb);
            EXPECT_EQ(p.relDelta, q.relDelta);
            EXPECT_EQ(p.divergent, q.divergent);
            EXPECT_EQ(p.direction(), q.direction());
            EXPECT_EQ(p.paperExpectation, q.paperExpectation);
        }
    }
}

/** One real N×N report, shared by the schema tests (built once: the
 *  differential run is the expensive part, the parses are cheap). */
const obs::DivergenceReport &
nxnReport()
{
    static const obs::DivergenceReport r =
        obs::divergenceReport("VecAdd", GpuConfig{}, {TestScale});
    return r;
}

std::string
serialized(const obs::DivergenceReport &r)
{
    std::ostringstream os;
    obs::writeDivergenceJson(os, r);
    return os.str();
}

} // namespace

TEST(DivergenceSchemaV2, RoundTripPreservesEveryField)
{
    const obs::DivergenceReport &r = nxnReport();
    ASSERT_FALSE(r.failed) << r.error;
    ASSERT_EQ(r.isas.size(), NumIsas);
    std::string js = serialized(r);
    EXPECT_NE(js.find("\"schema\":\"last-divergence-v2\""),
              std::string::npos);
    EXPECT_TRUE(JsonChecker(js).valid()) << js;
    obs::DivergenceReport back = obs::readDivergenceJson(js, "<test>");
    expectReportsEqual(r, back);
    // Writing the parsed report again is byte-identical: the schema
    // has one canonical serialization.
    EXPECT_EQ(js, serialized(back));
}

TEST(DivergenceSchemaV2, ArrayFormRoundTripsIncludingFailedReports)
{
    obs::DivergenceReport bad;
    bad.workload = "VecAdd";
    bad.failed = true;
    bad.error = "GCN3: deadlock \"watchdog\"\n";
    bad.isas = {IsaKind::HSAIL, IsaKind::GCN3, IsaKind::PTXL};
    std::vector<obs::DivergenceReport> rs = {nxnReport(), bad};
    std::ostringstream os;
    obs::writeDivergenceJsonArray(os, rs);
    ASSERT_TRUE(JsonChecker(os.str()).valid()) << os.str();
    auto back = obs::readDivergenceJsonArray(os.str(), "<test>");
    ASSERT_EQ(back.size(), 2u);
    expectReportsEqual(rs[0], back[0]);
    expectReportsEqual(rs[1], back[1]);
    EXPECT_TRUE(back[1].failed);
    EXPECT_TRUE(back[1].entries.empty());
}

TEST(DivergenceSchemaV2, TwoIsaReportKeepsV1LegacyView)
{
    // The 2-ary (HSAIL, GCN3) overload must round-trip as a two-level
    // report whose legacy members and single pair agree exactly.
    auto [hsail, gcn3] = sim::runBoth("VecAdd", GpuConfig{}, {TestScale});
    obs::DivergenceReport r = obs::divergenceReport(hsail, gcn3);
    ASSERT_FALSE(r.failed);
    std::vector<IsaKind> want = {IsaKind::HSAIL, IsaKind::GCN3};
    EXPECT_EQ(r.isas, want);
    obs::DivergenceReport back =
        obs::readDivergenceJson(serialized(r), "<test>");
    expectReportsEqual(r, back);
    for (const obs::DivergenceEntry &e : back.entries) {
        ASSERT_EQ(e.pairs.size(), 1u) << e.stat;
        EXPECT_EQ(e.maxRelDelta, e.relDelta) << e.stat;
        EXPECT_EQ(e.pairs[0].va, e.hsail) << e.stat;
        EXPECT_EQ(e.pairs[0].vb, e.gcn3) << e.stat;
    }
}

TEST(DivergenceSchemaV2, V1PayloadReadsAsTwoLevelReport)
{
    // A legacy last-divergence-v1 file (shape per SCHEMAS.md) must
    // read back as the {HSAIL, GCN3} report it always meant, with the
    // pair triangle synthesized from the flat v1 fields.
    const std::string v1 =
        "{\n\"schema\":\"last-divergence-v1\",\n"
        "\"workload\":\"atomicred\",\"scale\":0.25,"
        "\"threshold\":0.10000000000000001,"
        "\"failed\":false,\"error\":\"\",\n"
        "\"entries\":[\n"
        "{\"stat\":\"salu\",\"figure\":\"Figure 5\",\"hsail\":0,"
        "\"gcn3\":112,\"rel_delta\":1,\"classification\":\"divergent\","
        "\"paper\":\"divergent\"},\n"
        "{\"stat\":\"simdUtil\",\"figure\":\"Table 6\",\"hsail\":1,"
        "\"gcn3\":1,\"rel_delta\":0,\"classification\":\"similar\","
        "\"paper\":\"similar\"}\n"
        "]}\n";
    obs::DivergenceReport r = obs::readDivergenceJson(v1, "<v1>");
    EXPECT_EQ(r.workload, "atomicred");
    EXPECT_EQ(r.scale, 0.25);
    std::vector<IsaKind> want = {IsaKind::HSAIL, IsaKind::GCN3};
    EXPECT_EQ(r.isas, want);
    ASSERT_EQ(r.entries.size(), 2u);
    const obs::DivergenceEntry &salu = r.entries[0];
    EXPECT_EQ(salu.stat, "salu");
    EXPECT_EQ(salu.hsail, 0);
    EXPECT_EQ(salu.gcn3, 112);
    EXPECT_EQ(salu.relDelta, 1);
    EXPECT_TRUE(salu.divergent);
    EXPECT_EQ(salu.maxRelDelta, salu.relDelta);
    ASSERT_EQ(salu.values.size(), 2u);
    ASSERT_EQ(salu.pairs.size(), 1u);
    const obs::DivergencePair *p =
        salu.findPair(IsaKind::HSAIL, IsaKind::GCN3);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->va, 0);
    EXPECT_EQ(p->vb, 112);
    EXPECT_EQ(p->direction(), "<");
    EXPECT_EQ(p->paperExpectation, "divergent");
    EXPECT_FALSE(r.entries[1].divergent);
    // Re-serializing upgrades the payload to v2 in place.
    std::string upgraded = serialized(r);
    EXPECT_NE(upgraded.find("\"schema\":\"last-divergence-v2\""),
              std::string::npos);
    expectReportsEqual(r, obs::readDivergenceJson(upgraded, "<up>"));
}

TEST(DivergenceSchemaV2, UnknownSchemaAndBadIsaAreRefused)
{
    // Per SCHEMAS.md: readers refuse unknown schema ids rather than
    // guessing, and every refusal names the source and a byte offset.
    std::string v3 = serialized(nxnReport());
    size_t at = v3.find("last-divergence-v2");
    ASSERT_NE(at, std::string::npos);
    v3.replace(at, 18, "last-divergence-v3");
    try {
        obs::readDivergenceJson(v3, "<v3>");
        FAIL() << "unknown schema id accepted";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("<v3>"), std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("at byte"),
                  std::string::npos)
            << e.what();
    }

    std::string badIsa = serialized(nxnReport());
    at = badIsa.find("\"PTXL\"");
    ASSERT_NE(at, std::string::npos);
    badIsa.replace(at, 6, "\"VEGA\"");
    EXPECT_THROW(obs::readDivergenceJson(badIsa, "<isa>"), ConfigError);

    // A pair referencing an ISA absent from the report's own isa list
    // is refused too (the triangle must be internally consistent).
    std::string orphan = serialized(nxnReport());
    at = orphan.find("\"isas\":[\"HSAIL\",\"GCN3\",\"PTXL\"]");
    ASSERT_NE(at, std::string::npos);
    orphan.replace(at, 31, "\"isas\":[\"HSAIL\",\"GCN3\"]");
    EXPECT_THROW(obs::readDivergenceJson(orphan, "<orphan>"),
                 ConfigError);
}

TEST(DivergenceSchemaV2, TornInputFailsLoudlyAtEveryTruncation)
{
    // A crashed writer (the shard/journal suites simulate SIGKILL
    // mid-write) leaves a prefix. Every proper prefix must throw
    // ConfigError — never crash, never parse to a partial report.
    // The only exception: trailing-newline-only truncation, which is
    // still a complete document.
    std::string js = serialized(nxnReport());
    ASSERT_EQ(js.back(), '\n');
    for (size_t len = 0; len + 1 < js.size(); ++len) {
        try {
            obs::readDivergenceJson(js.substr(0, len), "<torn>");
            FAIL() << "torn prefix of " << len << " bytes parsed";
        } catch (const ConfigError &) {
            // expected
        }
    }
    expectReportsEqual(
        nxnReport(),
        obs::readDivergenceJson(js.substr(0, js.size() - 1), "<t>"));
}

TEST(DivergenceSchemaV2, GarbageMutationsNeverCrashTheReader)
{
    // Single-byte corruption fuzz: the reader either throws ConfigError
    // or parses (a mutation can land in a value and still be valid
    // JSON) — anything else (crash, other exception) fails the test.
    std::string base = serialized(nxnReport());
    std::mt19937_64 rng(0xD1F5EEDull);
    unsigned parsed = 0, refused = 0;
    for (int trial = 0; trial < 400; ++trial) {
        std::string s = base;
        size_t pos = rng() % s.size();
        s[pos] = char(rng() & 0xFF);
        try {
            obs::readDivergenceJson(s, "<fuzz>");
            ++parsed;
        } catch (const ConfigError &) {
            ++refused;
        }
    }
    EXPECT_EQ(parsed + refused, 400u);
    // Corrupting structural bytes must actually refuse: a reader that
    // "accepts" most mutations is not strict.
    EXPECT_GT(refused, 200u);
}
