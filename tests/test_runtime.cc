/** @file Runtime / command-processor / segment-manager tests. */

#include <gtest/gtest.h>

#include "finalizer/abi.hh"
#include "finalizer/finalizer.hh"
#include "finalizer/regalloc.hh"
#include "helpers.hh"
#include "runtime/runtime.hh"

using namespace last;
using namespace last::hsail;

TEST(Runtime, AllocAligns)
{
    runtime::Runtime rt;
    Addr a = rt.allocGlobal(100, 64);
    Addr b = rt.allocGlobal(4, 4096);
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(b % 4096, 0u);
    EXPECT_GE(b, a + 100);
}

TEST(Runtime, GlobalReadWrite)
{
    runtime::Runtime rt;
    Addr a = rt.allocGlobal(16);
    rt.writeGlobal<uint64_t>(a, 0x1234567890ull);
    EXPECT_EQ(rt.readGlobal<uint64_t>(a), 0x1234567890ull);
}

TEST(Runtime, PacketFieldsMatchAbi)
{
    runtime::Runtime rt;
    KernelBuilder kb("pkt");
    kb.setKernargBytes(8);
    Val p = kb.ldKernarg(DataType::U64, 0);
    kb.stGlobal(kb.workgroupSize(), p);
    kb.stGlobal(kb.gridSize(), p, 4);
    auto il = kb.build();
    finalizer::compactIlRegisters(il);

    Addr out = rt.allocGlobal(64);
    struct Args
    {
        uint64_t out;
    } args{out};
    rt.dispatch(*il.code, 512, 256, &args, sizeof(args));
    EXPECT_EQ(rt.readGlobal<uint32_t>(out), 256u);
    EXPECT_EQ(rt.readGlobal<uint32_t>(out + 4), 512u);
}

TEST(Runtime, Gcn3ReadsPacketThroughMemory)
{
    // The same kernel finalized: workgroupsize comes from an s_load of
    // the real AQL packet the CP wrote into memory.
    runtime::Runtime rt;
    KernelBuilder kb("pkt2");
    kb.setKernargBytes(8);
    Val p = kb.ldKernarg(DataType::U64, 0);
    kb.stGlobal(kb.workgroupSize(), p);
    auto il = kb.build();
    finalizer::compactIlRegisters(il);
    auto gcn = finalizer::finalize(il, rt.config());

    Addr out = rt.allocGlobal(64);
    struct Args
    {
        uint64_t out;
    } args{out};
    rt.dispatch(*gcn, 256, 256, &args, sizeof(args));
    EXPECT_EQ(rt.readGlobal<uint32_t>(out), 256u);
    // Scalar memory traffic happened.
    EXPECT_GT(rt.gpu().sumCuStat("smemInsts"), 0.0);
}

TEST(Runtime, LaunchRecordsPerDispatch)
{
    runtime::Runtime rt;
    KernelBuilder kb("rec");
    kb.stGlobal(kb.immU32(1), kb.immU64(0x1000));
    auto il = kb.build();
    finalizer::compactIlRegisters(il);
    rt.dispatch(*il.code, 256, 256, nullptr, 0);
    rt.dispatch(*il.code, 256, 256, nullptr, 0);
    ASSERT_EQ(rt.launchRecords().size(), 2u);
    EXPECT_EQ(rt.launchRecords()[0].kernel, "rec");
    EXPECT_GT(rt.launchRecords()[0].cycles, 0u);
    EXPECT_GT(rt.launchRecords()[1].instsIssued, 0u);
}

TEST(Runtime, InstFootprintChargedOncePerKernel)
{
    runtime::Runtime rt;
    KernelBuilder kb("once");
    kb.stGlobal(kb.immU32(1), kb.immU64(0x1000));
    auto il = kb.build();
    finalizer::compactIlRegisters(il);
    rt.dispatch(*il.code, 256, 256, nullptr, 0);
    uint64_t f1 = rt.instFootprintBytes();
    rt.dispatch(*il.code, 256, 256, nullptr, 0);
    EXPECT_EQ(rt.instFootprintBytes(), f1);
    EXPECT_EQ(f1, il.code->codeBytes());
}

namespace
{

hsail::IlKernel
privateKernel()
{
    KernelBuilder kb("scratch");
    kb.setPrivateBytesPerWi(16);
    Val gid = kb.workitemAbsId();
    kb.stPrivate(gid, Val{}, 0);
    Val v = kb.ldPrivate(DataType::U32, Val{}, 0);
    Val off = kb.cvt(DataType::U64, kb.mul(gid, kb.immU32(4)));
    kb.stGlobal(v, kb.add(kb.immU64(0x200000), off));
    return kb.build();
}

} // namespace

TEST(Runtime, HsailAllocatesScratchPerLaunch)
{
    // Table 6's mechanism: the emulated HSAIL ABI maps new segment
    // arenas on every dynamic launch, so the data footprint grows
    // linearly in launches.
    runtime::Runtime rt;
    auto il = privateKernel();
    finalizer::compactIlRegisters(il);
    rt.dispatch(*il.code, 256, 256, nullptr, 0);
    uint64_t f1 = rt.dataFootprintBytes();
    rt.dispatch(*il.code, 256, 256, nullptr, 0);
    uint64_t f2 = rt.dataFootprintBytes();
    rt.dispatch(*il.code, 256, 256, nullptr, 0);
    uint64_t f3 = rt.dataFootprintBytes();
    EXPECT_GT(f2 - f1, 256u * 16 / 2); // fresh arena touched
    EXPECT_GT(f3 - f2, 256u * 16 / 2);
}

TEST(Runtime, Gcn3ReusesProcessScratch)
{
    runtime::Runtime rt;
    auto il = privateKernel();
    finalizer::compactIlRegisters(il);
    auto gcn = finalizer::finalize(il, rt.config());
    rt.dispatch(*gcn, 256, 256, nullptr, 0);
    uint64_t f1 = rt.dataFootprintBytes();
    rt.dispatch(*gcn, 256, 256, nullptr, 0);
    uint64_t f2 = rt.dataFootprintBytes();
    // The second launch reuses the process arena: only the fresh
    // packet/kernarg lines appear, nothing scratch-sized.
    EXPECT_LT(f2 - f1, 1024u);
    EXPECT_LT(f2 - f1, 256u * 16 / 4);
    // And the scratch values were per-work-item correct.
    for (unsigned i = 0; i < 256; i += 37)
        EXPECT_EQ(rt.readGlobal<uint32_t>(0x200000 + 4 * i), i);
}

TEST(Runtime, RejectsBadDispatches)
{
    runtime::Runtime rt;
    KernelBuilder kb("bad");
    kb.stGlobal(kb.immU32(1), kb.immU64(0x1000));
    auto il = kb.build();
    EXPECT_THROW(rt.dispatch(*il.code, 0, 256, nullptr, 0),
                 std::runtime_error);
    EXPECT_THROW(rt.dispatch(*il.code, 256, 100, nullptr, 0),
                 std::runtime_error);
}

TEST(Runtime, RejectsUndispatchableKernels)
{
    // A kernel whose register demand can never fit a CU must fail
    // loudly instead of deadlocking the dispatcher.
    runtime::Runtime rt;
    KernelBuilder kb("huge");
    std::vector<Val> keep;
    Val acc = kb.immF32(0.0f);
    for (int i = 0; i < 700; ++i)
        keep.push_back(kb.immF32(float(i)));
    for (auto &v : keep)
        kb.emitAluTo(Opcode::Add, acc, acc, v);
    kb.stGlobal(acc, kb.immU64(0x1000));
    auto il = kb.build(); // ~700 live registers -> 2,800 per WG
    EXPECT_THROW(rt.dispatch(*il.code, 256, 256, nullptr, 0),
                 std::runtime_error);
}
