/** @file Unit tests for functional memory, caches, DRAM, and LDS. */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "memory/cache.hh"
#include "memory/dram.hh"
#include "memory/functional_memory.hh"
#include "memory/lds.hh"

using namespace last;
using namespace last::mem;

TEST(FunctionalMemory, ReadWriteRoundTrip)
{
    FunctionalMemory m;
    m.write<uint32_t>(0x1000, 0xdeadbeef);
    EXPECT_EQ(m.read<uint32_t>(0x1000), 0xdeadbeefu);
    m.write<double>(0x2000, 3.25);
    EXPECT_DOUBLE_EQ(m.read<double>(0x2000), 3.25);
}

TEST(FunctionalMemory, UnwrittenReadsZero)
{
    FunctionalMemory m;
    EXPECT_EQ(m.read<uint64_t>(0x98765), 0u);
}

TEST(FunctionalMemory, CrossPageAccess)
{
    FunctionalMemory m;
    uint64_t v = 0x1122334455667788ull;
    m.write(4096 - 4, &v, 8); // straddles a page boundary
    uint64_t got = 0;
    m.read(4096 - 4, &got, 8);
    EXPECT_EQ(got, v);
    EXPECT_GE(m.numPages(), 2u);
}

TEST(FunctionalMemory, FootprintCountsLines)
{
    FunctionalMemory m;
    EXPECT_EQ(m.footprintLines(), 0u);
    m.write<uint32_t>(0, 1);
    m.write<uint32_t>(4, 1); // same 64 B line
    EXPECT_EQ(m.footprintLines(), 1u);
    m.write<uint32_t>(64, 1);
    EXPECT_EQ(m.footprintLines(), 2u);
    m.read<uint32_t>(640); // reads count too
    EXPECT_EQ(m.footprintLines(), 3u);
    m.resetFootprint();
    EXPECT_EQ(m.footprintLines(), 0u);
    EXPECT_EQ(m.read<uint32_t>(0), 1u); // contents survive
}

namespace
{

/** Fixed-latency backing level for cache tests. */
class FakeNext : public MemLevel
{
  public:
    Cycle
    access(Addr, bool is_write, Cycle now) override
    {
        ++accesses;
        if (is_write)
            ++writes;
        return now + 100;
    }
    unsigned accesses = 0;
    unsigned writes = 0;
};

CacheConfig
smallCache()
{
    return {1024, 64, 2, 4, false, 4};
}

} // namespace

TEST(Cache, HitAfterMiss)
{
    stats::Group root("root");
    FakeNext next;
    Cache c("l1", smallCache(), &next, &root);
    Cycle t1 = c.access(0x100, false, 0);
    EXPECT_GT(t1, 100u); // miss went to the next level
    EXPECT_EQ(c.misses.value(), 1.0);
    Cycle t2 = c.access(0x104, false, Cycle(t1));
    EXPECT_EQ(t2, t1 + 4); // same-line hit at hit latency
    EXPECT_EQ(c.hits.value(), 1.0);
    EXPECT_TRUE(c.isCached(0x100));
}

TEST(Cache, MshrMergesOutstandingMisses)
{
    stats::Group root("root");
    FakeNext next;
    Cache c("l1", smallCache(), &next, &root);
    Cycle t1 = c.access(0x200, false, 0);
    Cycle t2 = c.access(0x220, false, 1); // same line, still in flight
    EXPECT_EQ(t2, t1);
    EXPECT_EQ(next.accesses, 1u);
    // After the fill completes, accesses hit at hit latency again.
    Cycle t3 = c.access(0x200, false, t1 + 1);
    EXPECT_EQ(t3, t1 + 1 + 4);
}

TEST(Cache, LruEviction)
{
    stats::Group root("root");
    FakeNext next;
    // 2-way, 64 B lines, 1 kB => 8 sets. Three lines in one set.
    Cache c("l1", smallCache(), &next, &root);
    Addr set_stride = 8 * 64;
    c.access(0 * set_stride, false, 1000);
    c.access(1 * set_stride, false, 2000);
    c.access(2 * set_stride, false, 3000); // evicts the first
    EXPECT_FALSE(c.isCached(0));
    EXPECT_TRUE(c.isCached(1 * set_stride));
    EXPECT_TRUE(c.isCached(2 * set_stride));
}

TEST(Cache, WriteThroughForwards)
{
    stats::Group root("root");
    FakeNext next;
    Cache c("l1", smallCache(), &next, &root);
    c.access(0x40, false, 0);
    unsigned before = next.writes;
    c.access(0x40, true, 500);
    EXPECT_EQ(next.writes, before + 1);
}

TEST(Cache, WriteBackDefersAndEvictsDirty)
{
    stats::Group root("root");
    FakeNext next;
    CacheConfig cfg = smallCache();
    cfg.writeBack = true;
    Cache c("l1", cfg, &next, &root);
    c.access(0x40, true, 0);
    EXPECT_EQ(next.writes, 0u); // dirty in cache, no write-through
    // Force eviction of the dirty line.
    Addr set_stride = 8 * 64;
    c.access(0x40 + set_stride, false, 1000);
    c.access(0x40 + 2 * set_stride, false, 2000);
    EXPECT_EQ(c.writebacks.value(), 1.0);
    EXPECT_EQ(next.writes, 1u);
}

TEST(Cache, FullyAssociativeConfig)
{
    stats::Group root("root");
    FakeNext next;
    CacheConfig cfg{16 * 1024, 64, 0, 4, true, 16};
    Cache c("l1d", cfg, &next, &root);
    // 256 distinct lines all fit.
    for (unsigned i = 0; i < 256; ++i)
        c.access(Addr(i) * 64, false, i * 200);
    for (unsigned i = 0; i < 256; ++i)
        EXPECT_TRUE(c.isCached(Addr(i) * 64));
}

TEST(Cache, InvalidateAll)
{
    stats::Group root("root");
    FakeNext next;
    Cache c("l1", smallCache(), &next, &root);
    c.access(0x40, false, 0);
    c.invalidateAll();
    EXPECT_FALSE(c.isCached(0x40));
}

TEST(Dram, ChannelBandwidthSerializes)
{
    stats::Group root("root");
    GpuConfig cfg;
    cfg.dramChannels = 2;
    cfg.dramLatency = 100;
    cfg.dramCyclesPerLine = 10;
    Dram d("dram", cfg, &root);
    // Same channel: line addresses 0 and 2*64 both map to channel 0.
    Cycle t1 = d.access(0, false, 0);
    Cycle t2 = d.access(2 * 64, false, 0);
    EXPECT_EQ(t1, 100u);
    EXPECT_EQ(t2, 110u); // queued behind the first transfer
    // Different channel: no queueing.
    Cycle t3 = d.access(64, false, 0);
    EXPECT_EQ(t3, 100u);
    EXPECT_EQ(d.reads.value(), 3.0);
}

TEST(Lds, ReadWriteAndBounds)
{
    LdsBlock lds(256);
    lds.write32(0, 42);
    lds.write32(252, 7);
    EXPECT_EQ(lds.read32(0), 42u);
    EXPECT_EQ(lds.read32(252), 7u);
    lds.write32(300, 9); // out of bounds: ignored
    EXPECT_EQ(lds.read32(300), 0u);
}

TEST(Lds, ConflictPasses)
{
    std::array<Addr, 64> offs{};
    // All lanes hit distinct banks: one pass.
    for (unsigned l = 0; l < 64; ++l)
        offs[l] = (l % 32) * 4;
    EXPECT_EQ(LdsBlock::conflictPasses(offs, ~0ull), 2u); // 64/32 lanes
    // All lanes hit the same bank.
    for (unsigned l = 0; l < 64; ++l)
        offs[l] = 128 * l; // bank 0 every time
    EXPECT_EQ(LdsBlock::conflictPasses(offs, ~0ull), 64u);
    // Only one active lane.
    EXPECT_EQ(LdsBlock::conflictPasses(offs, 1ull), 1u);
}
