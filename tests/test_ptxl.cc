/**
 * @file
 * PTXL backend test suite, three layers deep:
 *
 *  1. Convergence-barrier reconvergence against the ipdom oracle: the
 *     HSAIL runs in test_ipdom.cc reconverge via the simulator's
 *     immediate-post-dominator stack; the same IL lowered to PTXL must
 *     reproduce every lane-visible value with BSSY/BSYNC instructions
 *     and the hardware warp-split stack alone, ending with the full
 *     mask restored and the split stack empty.
 *  2. The predecode contract (mirroring test_exec_engine.cc): every
 *     ExecMeta record of a lowered PTXL kernel must agree with the
 *     virtual methods it replaces, and every workload run through the
 *     direct-threaded engine must be field-for-field identical to the
 *     virtual-dispatch reference.
 *  3. Machine-level shape: no scalar pipe, no software dependency
 *     management (waitcnt stays zero; the scoreboard stalls instead),
 *     fixed 16-byte encoding, and barrier brackets only around
 *     *divergent* regions.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "arch/exec_meta.hh"
#include "arch/kernel_code.hh"
#include "finalizer/backend.hh"
#include "finalizer/regalloc.hh"
#include "helpers.hh"
#include "hsail/ipdom.hh"
#include "ptxl/inst.hh"
#include "runtime/runtime.hh"
#include "sim/bench_cache.hh"
#include "sim/parallel.hh"

using namespace last;
using namespace last::hsail;
using last::test::MiniWf;

namespace
{

std::unique_ptr<arch::KernelCode>
lowerPtxl(const hsail::IlKernel &il)
{
    return finalizer::finalize(il, IsaKind::PTXL, GpuConfig{});
}

/** Count instructions of one PTXL operation class. */
unsigned
countOp(const arch::KernelCode &code, ptxl::PtxlOp op)
{
    unsigned n = 0;
    for (size_t i = 0; i < code.numInsts(); ++i) {
        const auto &pi = static_cast<const ptxl::PtxlInst &>(code.inst(i));
        n += pi.op() == op;
    }
    return n;
}

/** Run the IL (HSAIL oracle) and the PTXL lowering of the same kernel
 *  on one wavefront each; on exit the PTXL side must be reconverged. */
struct BothWf
{
    MiniWf hsail;
    std::unique_ptr<arch::KernelCode> ptxlCode;
    MiniWf ptxl;

    explicit BothWf(const hsail::IlKernel &il)
        : hsail(*il.code), ptxlCode(lowerPtxl(il)), ptxl(*ptxlCode)
    {
    }

    void
    run()
    {
        hsail.run();
        ptxl.run();
        EXPECT_TRUE(ptxl.st.done);
        EXPECT_EQ(ptxl.st.exec, ~0ull)
            << "PTXL left the wavefront partially masked";
        EXPECT_TRUE(ptxl.st.splits.empty())
            << "PTXL left parked warp splits behind";
    }

    /** The lowering keeps IL vreg indices, so the oracle comparison
     *  can read the same register on both sides. */
    void
    expectLanesEqual(const Val &v)
    {
        for (unsigned lane = 0; lane < 64; ++lane)
            EXPECT_EQ(ptxl.st.readVreg(v.reg, lane),
                      hsail.st.readVreg(v.reg, lane))
                << "lane " << lane;
    }
};

} // namespace

// ---------------------------------------------------------------------
// (1) BSSY/BSYNC reconvergence vs the ipdom oracle.
// ---------------------------------------------------------------------

TEST(PtxlReconvergence, DivergentIfMasksLanes)
{
    KernelBuilder kb("div");
    Val gid = kb.workitemAbsId();
    Val r = kb.immU32(0);
    Val c = kb.cmp(CmpOp::Lt, gid, kb.immU32(20));
    kb.ifBegin(c);
    kb.emitAluTo(Opcode::Add, r, r, kb.immU32(100));
    kb.ifElse();
    kb.emitAluTo(Opcode::Add, r, r, kb.immU32(200));
    kb.ifEnd();
    kb.emitAluTo(Opcode::Add, r, r, kb.immU32(1));
    auto il = kb.build();

    BothWf wf(il);
    wf.run();
    wf.expectLanesEqual(r);
    EXPECT_EQ(wf.ptxl.st.readVreg(r.reg, 0), 101u);
    EXPECT_EQ(wf.ptxl.st.readVreg(r.reg, 63), 201u);
}

TEST(PtxlReconvergence, DivergentLoopTripCounts)
{
    // Lane l iterates (l % 4) + 1 times; stragglers ride the split
    // stack until the BSYNC below the backedge collects them.
    KernelBuilder kb("divloop");
    Val gid = kb.workitemAbsId();
    Val j = kb.and_(gid, kb.immU32(3));
    Val cnt = kb.immU32(0);
    Val one = kb.immU32(1);
    kb.doBegin();
    kb.emitAluTo(Opcode::Add, cnt, cnt, one);
    kb.emitAluTo(Opcode::Add, j, j, one);
    kb.doEnd(kb.cmp(CmpOp::Lt, j, kb.immU32(4)));
    auto il = kb.build();

    BothWf wf(il);
    wf.run();
    wf.expectLanesEqual(cnt);
    for (unsigned lane = 0; lane < 64; ++lane)
        EXPECT_EQ(wf.ptxl.st.readVreg(cnt.reg, lane), 4 - (lane % 4));
}

TEST(PtxlReconvergence, NestedDivergenceUsesDistinctBarriers)
{
    KernelBuilder kb("nested");
    Val gid = kb.workitemAbsId();
    Val r = kb.immU32(0);
    Val outer = kb.cmp(CmpOp::Lt, gid, kb.immU32(32));
    kb.ifBegin(outer);
    {
        Val inner = kb.cmp(CmpOp::Lt, gid, kb.immU32(16));
        kb.ifBegin(inner);
        kb.emitAluTo(Opcode::Add, r, r, kb.immU32(10));
        kb.ifEnd();
        kb.emitAluTo(Opcode::Add, r, r, kb.immU32(1));
    }
    kb.ifEnd();
    auto il = kb.build();

    BothWf wf(il);

    // The inner BSYNC must not consume the outer barrier's splits: the
    // two nested divergent regions get distinct barrier indices.
    EXPECT_EQ(countOp(*wf.ptxlCode, ptxl::PtxlOp::Bssy), 2u);
    EXPECT_EQ(countOp(*wf.ptxlCode, ptxl::PtxlOp::Bsync), 2u);
    unsigned distinctBars = 0;
    uint64_t seen = 0;
    for (size_t i = 0; i < wf.ptxlCode->numInsts(); ++i) {
        const auto &pi =
            static_cast<const ptxl::PtxlInst &>(wf.ptxlCode->inst(i));
        if (pi.op() == ptxl::PtxlOp::Bssy && !(seen & (1u << pi.barIdx()))) {
            seen |= 1u << pi.barIdx();
            ++distinctBars;
        }
    }
    EXPECT_EQ(distinctBars, 2u);

    wf.run();
    wf.expectLanesEqual(r);
    EXPECT_EQ(wf.ptxl.st.readVreg(r.reg, 5), 11u);
    EXPECT_EQ(wf.ptxl.st.readVreg(r.reg, 20), 1u);
    EXPECT_EQ(wf.ptxl.st.readVreg(r.reg, 40), 0u);
}

TEST(PtxlReconvergence, Figure3IfElseIf)
{
    // The paper's Figure 3 if/else-if; the oracle is the HSAIL run's
    // memory image, not hardcoded constants, so the two convergence
    // schemes are compared end to end.
    KernelBuilder kb("fig3");
    Val gid = kb.workitemAbsId();
    Val out = kb.immU64(0x8000);
    Val off = kb.cvt(DataType::U64, kb.mul(gid, kb.immU32(4)));
    Val dst = kb.add(out, off);
    Val c1 = kb.cmp(CmpOp::Lt, gid, kb.immU32(2));
    kb.ifBegin(c1);
    kb.stGlobal(kb.immU32(84), dst);
    kb.ifElse();
    {
        Val c2 = kb.cmp(CmpOp::Lt, gid, kb.immU32(4));
        kb.ifBegin(c2);
        kb.stGlobal(kb.immU32(90), dst);
        kb.ifElse();
        kb.stGlobal(kb.immU32(84), dst);
        kb.ifEnd();
    }
    kb.ifEnd();
    auto il = kb.build();

    BothWf wf(il);
    wf.run();
    for (unsigned wi = 0; wi < 64; ++wi)
        EXPECT_EQ(wf.ptxl.mem.read<uint32_t>(0x8000 + wi * 4),
                  wf.hsail.mem.read<uint32_t>(0x8000 + wi * 4))
            << "work-item " << wi;
    EXPECT_EQ(wf.ptxl.mem.read<uint32_t>(0x8000 + 2 * 4), 90u);
    EXPECT_EQ(wf.ptxl.mem.read<uint32_t>(0x8000 + 4 * 4), 84u);
}

TEST(PtxlReconvergence, UniformBranchEmitsNoBarrier)
{
    // Uniformity analysis is shared across backends: a workgroup-
    // uniform condition needs no convergence barrier at all, exactly
    // as GCN3 takes the scalar-branch path for it.
    KernelBuilder kb("uniform");
    Val wg = kb.workgroupId();
    Val r = kb.immU32(0);
    Val c = kb.cmp(CmpOp::Eq, wg, kb.immU32(0));
    kb.ifBegin(c);
    kb.emitAluTo(Opcode::Add, r, r, kb.immU32(7));
    kb.ifEnd();
    auto il = kb.build();

    BothWf wf(il);
    EXPECT_EQ(countOp(*wf.ptxlCode, ptxl::PtxlOp::Bssy), 0u);
    EXPECT_EQ(countOp(*wf.ptxlCode, ptxl::PtxlOp::Bsync), 0u);

    wf.run();
    wf.expectLanesEqual(r);
    EXPECT_EQ(wf.ptxl.st.readVreg(r.reg, 0), 7u);
}

TEST(PtxlReconvergence, BarriersAreBracketedOnRandomKernels)
{
    // Structural well-formedness across the random-kernel corpus:
    // BSSY/BSYNC counts match per barrier index and every BSSY
    // statically precedes its BSYNC (structured lowering invariant).
    for (uint64_t seed = 1; seed <= 16; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        auto il = last::test::randomKernel(seed);
        finalizer::compactIlRegisters(il);
        auto code = lowerPtxl(il);
        int firstSet[arch::WfState::NumPtxlBarriers];
        int sets[arch::WfState::NumPtxlBarriers] = {};
        int syncs[arch::WfState::NumPtxlBarriers] = {};
        for (unsigned b = 0; b < arch::WfState::NumPtxlBarriers; ++b)
            firstSet[b] = -1;
        for (size_t i = 0; i < code->numInsts(); ++i) {
            const auto &pi =
                static_cast<const ptxl::PtxlInst &>(code->inst(i));
            if (pi.op() == ptxl::PtxlOp::Bssy) {
                if (firstSet[pi.barIdx()] < 0)
                    firstSet[pi.barIdx()] = int(i);
                ++sets[pi.barIdx()];
            } else if (pi.op() == ptxl::PtxlOp::Bsync) {
                ASSERT_GT(sets[pi.barIdx()], syncs[pi.barIdx()])
                    << "BSYNC B" << unsigned(pi.barIdx())
                    << " before its BSSY at inst " << i;
                ++syncs[pi.barIdx()];
            }
        }
        for (unsigned b = 0; b < arch::WfState::NumPtxlBarriers; ++b)
            EXPECT_EQ(sets[b], syncs[b]) << "barrier " << b;
    }
}

// ---------------------------------------------------------------------
// (2) The predecode contract.
// ---------------------------------------------------------------------

TEST(PtxlExecEngine, PredecodedMetaAgreesWithInstruction)
{
    // Every ExecMeta field the timing model consumes must agree with
    // the virtual method it replaced, for every instruction of every
    // lowered random kernel, across latency configs.
    GpuConfig cfgs[2];
    cfgs[1].valuLatency += 3;
    cfgs[1].dramLatency += 100;
    cfgs[1].ldsLatency += 2;
    cfgs[1].branchLatency += 2;

    auto checkKernel = [&](const arch::KernelCode &code) {
        const auto &metas = code.execMetas();
        ASSERT_EQ(metas.size(), code.numInsts());
        for (size_t i = 0; i < metas.size(); ++i) {
            const arch::ExecMeta &m = metas[i];
            const arch::Instruction &in = code.inst(i);
            SCOPED_TRACE(code.name() + ": " + in.disassemble());
            EXPECT_EQ(m.inst, &in);
            EXPECT_NE(m.handler, nullptr);
            EXPECT_EQ(m.flags, in.flags());
            EXPECT_EQ(m.fu, in.fuType());
            EXPECT_EQ(unsigned(m.size), in.sizeBytes());
            EXPECT_EQ(unsigned(m.size), code.sizeOf(i));
            EXPECT_EQ(unsigned(m.size), ptxl::PtxlInst::EncodedBytes)
                << "PTXL encoding is fixed-width";
            for (const GpuConfig &cfg : cfgs)
                EXPECT_EQ(m.latency(cfg), in.latency(cfg));
            EXPECT_EQ(m.numOps, in.regOps().size());
            for (size_t k = 0; k < in.regOps().size(); ++k) {
                EXPECT_EQ(m.ops[k].idx, in.regOps()[k].idx);
                EXPECT_EQ(m.ops[k].width, in.regOps()[k].width);
                EXPECT_EQ(m.ops[k].cls, in.regOps()[k].cls);
                EXPECT_EQ(m.ops[k].isDef, in.regOps()[k].isDef);
            }
        }
    };

    runtime::Runtime rt;
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        auto il = last::test::randomKernel(seed);
        finalizer::compactIlRegisters(il);
        auto code = finalizer::finalize(il, IsaKind::PTXL, rt.config());
        checkKernel(*code);
    }
}

namespace
{

/** Field-for-field AppResult comparison (all Figure/Table stats);
 *  the same list test_exec_engine.cc pins for HSAIL/GCN3. */
void
expectResultsEqual(const sim::AppResult &a, const sim::AppResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.isa, b.isa);
    EXPECT_EQ(a.verified, b.verified);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.dynInsts, b.dynInsts);
    EXPECT_EQ(a.valu, b.valu);
    EXPECT_EQ(a.salu, b.salu);
    EXPECT_EQ(a.vmem, b.vmem);
    EXPECT_EQ(a.smem, b.smem);
    EXPECT_EQ(a.lds, b.lds);
    EXPECT_EQ(a.branch, b.branch);
    EXPECT_EQ(a.waitcnt, b.waitcnt);
    EXPECT_EQ(a.misc, b.misc);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.vrfBankConflicts, b.vrfBankConflicts);
    EXPECT_DOUBLE_EQ(a.reuseMedian, b.reuseMedian);
    EXPECT_EQ(a.instFootprint, b.instFootprint);
    EXPECT_EQ(a.ibFlushes, b.ibFlushes);
    EXPECT_DOUBLE_EQ(a.readUniq, b.readUniq);
    EXPECT_DOUBLE_EQ(a.writeUniq, b.writeUniq);
    EXPECT_DOUBLE_EQ(a.vrfUniq, b.vrfUniq);
    EXPECT_EQ(a.dataFootprint, b.dataFootprint);
    EXPECT_DOUBLE_EQ(a.simdUtil, b.simdUtil);
    EXPECT_EQ(a.l1iMisses, b.l1iMisses);
    EXPECT_EQ(a.l1iHits, b.l1iHits);
    EXPECT_EQ(a.hazardViolations, b.hazardViolations);
    EXPECT_EQ(a.scoreboardStalls, b.scoreboardStalls);
    EXPECT_EQ(a.waitcntStalls, b.waitcntStalls);
    EXPECT_EQ(a.ibEmptyStalls, b.ibEmptyStalls);
    EXPECT_EQ(a.fuConflictStalls, b.fuConflictStalls);
    EXPECT_EQ(a.coalescedLines, b.coalescedLines);
    EXPECT_EQ(a.busyCycles, b.busyCycles);
    ASSERT_EQ(a.launches.size(), b.launches.size());
    for (size_t i = 0; i < a.launches.size(); ++i) {
        EXPECT_EQ(a.launches[i].kernel, b.launches[i].kernel);
        EXPECT_EQ(a.launches[i].cycles, b.launches[i].cycles);
        EXPECT_EQ(a.launches[i].instsIssued, b.launches[i].instsIssued);
    }
}

/** The PTXL engine-differential matrix: Table 5 representatives plus
 *  every stress shape, with `execReference` forced as requested. */
std::vector<sim::RunSpec>
ptxlEngineSweep(bool reference)
{
    workloads::WorkloadScale scale{0.25};
    GpuConfig cfg;
    cfg.execReference = reference;
    std::vector<sim::RunSpec> specs;
    for (const char *w : {"VecAdd", "ArrayBW", "BitonicSort", "atomicred",
                          "ldsswizzle", "bfsgraph", "pipeline"})
        specs.push_back({w, IsaKind::PTXL, cfg, scale});
    return specs;
}

} // namespace

TEST(PtxlExecEngine, MatchesReferenceFieldForField)
{
    auto fast = ptxlEngineSweep(false);
    auto ref = ptxlEngineSweep(true);
    auto fastRes = sim::runMany(fast);
    auto refRes = sim::runMany(ref);
    ASSERT_EQ(fastRes.size(), refRes.size());
    for (size_t i = 0; i < fastRes.size(); ++i) {
        SCOPED_TRACE(fast[i].workload);
        expectResultsEqual(fastRes[i], refRes[i]);
    }
}

TEST(PtxlExecEngine, BenchCacheRowsByteIdentical)
{
    auto fast = ptxlEngineSweep(false);
    auto ref = ptxlEngineSweep(true);
    auto fastRes = sim::runMany(fast);
    auto refRes = sim::runMany(ref);
    ASSERT_EQ(fastRes.size(), refRes.size());

    auto serialize = [](const std::vector<sim::RunSpec> &specs,
                        const std::vector<sim::AppResult> &results) {
        sim::BenchCacheFile cache;
        cache.scale = specs.front().scale.factor;
        for (size_t i = 0; i < specs.size(); ++i)
            cache.rows.push_back(
                {sim::specCacheKey(specs[i]), results[i]});
        std::ostringstream os;
        sim::writeBenchCache(os, cache);
        return os.str();
    };
    EXPECT_EQ(serialize(fast, fastRes), serialize(ref, refRes));
}

// ---------------------------------------------------------------------
// (3) Machine-level shape.
// ---------------------------------------------------------------------

TEST(PtxlMachineShape, NoScalarPipeNoWaitcntScoreboardStallsInstead)
{
    workloads::WorkloadScale scale{0.25};
    sim::AppResult h = sim::runApp("bfsgraph", IsaKind::HSAIL,
                                   GpuConfig{}, scale);
    sim::AppResult p = sim::runApp("bfsgraph", IsaKind::PTXL,
                                   GpuConfig{}, scale);
    EXPECT_TRUE(p.verified);
    EXPECT_EQ(p.digest, h.digest);
    EXPECT_EQ(p.hazardViolations, 0u)
        << "the hardware scoreboard let a not-ready register be read";

    // No scalar pipeline and no software dependency management --
    // machine-level properties the GCN3 differential asserts the
    // *presence* of (test_differential.cc). Kernel parameters flow
    // through LDC (the constant cache, counted as smem traffic), so
    // only the ALU and waitcnt buckets must be empty.
    EXPECT_EQ(p.salu, 0u);
    EXPECT_GT(p.smem, 0u);
    EXPECT_EQ(p.waitcnt, 0u);
    EXPECT_EQ(p.waitcntStalls, 0u);
    EXPECT_GT(p.scoreboardStalls, 0u);
    // More machine instructions than IL, like every machine backend.
    EXPECT_GE(p.dynInsts, h.dynInsts);
}

TEST(PtxlMachineShape, ConfigDigestSeparatesBackendsAndKnobs)
{
    GpuConfig cfg;
    const uint64_t base =
        finalizer::finalizeConfigDigest(cfg, IsaKind::PTXL);
    EXPECT_EQ(base, finalizer::finalizeConfigDigest(cfg, IsaKind::PTXL));
    EXPECT_NE(base, finalizer::finalizeConfigDigest(cfg, IsaKind::GCN3));

    GpuConfig knobbed;
    knobbed.maxRegsPerWfPtxl /= 2;
    EXPECT_NE(base, finalizer::finalizeConfigDigest(knobbed,
                                                    IsaKind::PTXL));
}
