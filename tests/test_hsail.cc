/** @file HSAIL ISA semantics tests (functional, one wavefront). */

#include <gtest/gtest.h>

#include <bit>

#include "helpers.hh"
#include "hsail/brig.hh"
#include "hsail/inst.hh"

using namespace last;
using namespace last::hsail;
using last::test::MiniWf;

namespace
{

/** Build a tiny kernel from a body closure and run one WF. */
template <typename Body>
std::pair<std::unique_ptr<arch::KernelCode>, Val>
buildSimple(Body body)
{
    KernelBuilder kb("t");
    Val result = body(kb);
    auto il = kb.build();
    return {std::move(il.code), result};
}

uint32_t f2b(float f) { return std::bit_cast<uint32_t>(f); }
float b2f(uint32_t b) { return std::bit_cast<float>(b); }

} // namespace

TEST(HsailExec, IntArithmetic)
{
    auto [code, r] = buildSimple([](KernelBuilder &kb) {
        Val a = kb.immU32(100);
        Val b = kb.immU32(7);
        return kb.add(kb.mul(a, b), kb.sub(a, b)); // 700 + 93
    });
    MiniWf wf(*code);
    wf.run();
    for (unsigned lane = 0; lane < 64; ++lane)
        EXPECT_EQ(wf.st.readVreg(r.reg, lane), 793u);
}

TEST(HsailExec, MulHi)
{
    auto [code, r] = buildSimple([](KernelBuilder &kb) {
        return kb.mulHi(kb.immU32(0x80000000u), kb.immU32(4));
    });
    MiniWf wf(*code);
    wf.run();
    EXPECT_EQ(wf.st.readVreg(r.reg, 0), 2u);
}

TEST(HsailExec, FloatOps)
{
    auto [code, r] = buildSimple([](KernelBuilder &kb) {
        Val x = kb.immF32(3.0f);
        Val y = kb.immF32(4.0f);
        return kb.sqrt_(kb.fma_(x, x, kb.mul(y, y))); // 5
    });
    MiniWf wf(*code);
    wf.run();
    EXPECT_FLOAT_EQ(b2f(wf.st.readVreg(r.reg, 0)), 5.0f);
}

TEST(HsailExec, F64Pairs)
{
    auto [code, r] = buildSimple([](KernelBuilder &kb) {
        Val x = kb.immF64(1.5);
        Val y = kb.immF64(2.5);
        return kb.div(kb.add(x, y), y); // 1.6
    });
    MiniWf wf(*code);
    wf.run();
    EXPECT_DOUBLE_EQ(
        std::bit_cast<double>(wf.st.readVreg64(r.reg, 0)), 1.6);
}

TEST(HsailExec, IntegerDivRem)
{
    auto [code, r] = buildSimple([](KernelBuilder &kb) {
        Val q = kb.div(kb.immU32(17), kb.immU32(5));
        Val m = kb.emitAlu2(Opcode::Rem, kb.immU32(17), kb.immU32(5));
        return kb.add(kb.shl(q, kb.immU32(8)), m); // 3 << 8 | 2
    });
    MiniWf wf(*code);
    wf.run();
    EXPECT_EQ(wf.st.readVreg(r.reg, 0), (3u << 8) + 2u);
}

TEST(HsailExec, BitOpsAndShifts)
{
    auto [code, r] = buildSimple([](KernelBuilder &kb) {
        Val x = kb.immU32(0xf0f0);
        Val s = kb.shl(x, kb.immU32(4));           // 0xf0f00
        Val t = kb.shr(s, kb.immU32(8));           // 0xf0f
        return kb.xor_(kb.and_(t, kb.immU32(0xff)), // 0x0f
                       kb.or_(x, kb.immU32(1)));    // ^ 0xf0f1
    });
    MiniWf wf(*code);
    wf.run();
    EXPECT_EQ(wf.st.readVreg(r.reg, 0), (0xfu ^ 0xf0f1u));
}

TEST(HsailExec, AShrSigned)
{
    auto [code, r] = buildSimple([](KernelBuilder &kb) {
        return kb.ashr(kb.immS32(-64), kb.immU32(3));
    });
    MiniWf wf(*code);
    wf.run();
    EXPECT_EQ(int32_t(wf.st.readVreg(r.reg, 0)), -8);
}

TEST(HsailExec, BfeExtract)
{
    auto [code, r] = buildSimple([](KernelBuilder &kb) {
        return kb.bfe(kb.immU32(0xabcd1234), kb.immU32(8),
                      kb.immU32(8));
    });
    MiniWf wf(*code);
    wf.run();
    EXPECT_EQ(wf.st.readVreg(r.reg, 0), 0x12u);
}

TEST(HsailExec, CmpAndCmov)
{
    auto [code, r] = buildSimple([](KernelBuilder &kb) {
        Val gid = kb.workitemAbsId();
        Val c = kb.cmp(CmpOp::Lt, gid, kb.immU32(32));
        return kb.cmov(c, kb.immU32(111), kb.immU32(222));
    });
    MiniWf wf(*code);
    wf.run();
    EXPECT_EQ(wf.st.readVreg(r.reg, 0), 111u);
    EXPECT_EQ(wf.st.readVreg(r.reg, 63), 222u);
}

TEST(HsailExec, CvtRoundTrips)
{
    auto [code, r] = buildSimple([](KernelBuilder &kb) {
        Val f = kb.cvt(DataType::F32, kb.immU32(41));
        Val d = kb.cvt(DataType::F64, f);
        return kb.cvt(DataType::U32, kb.cvt(DataType::F32, d));
    });
    MiniWf wf(*code);
    wf.run();
    EXPECT_EQ(wf.st.readVreg(r.reg, 0), 41u);
}

TEST(HsailExec, DispatchIntrinsics)
{
    KernelBuilder kb("intrin");
    Val abs = kb.workitemAbsId();
    Val wid = kb.workitemId();
    Val wg = kb.workgroupId();
    Val sz = kb.workgroupSize();
    Val gs = kb.gridSize();
    auto il = kb.build();
    MiniWf wf(*il.code, 128, 512, 3); // wg 3 of size 128
    wf.st.wfIdInWg = 1;
    wf.st.firstWorkitem = 3 * 128 + 64;
    wf.run();
    EXPECT_EQ(wf.st.readVreg(abs.reg, 0), 3u * 128 + 64);
    EXPECT_EQ(wf.st.readVreg(wid.reg, 5), 64u + 5);
    EXPECT_EQ(wf.st.readVreg(wg.reg, 0), 3u);
    EXPECT_EQ(wf.st.readVreg(sz.reg, 0), 128u);
    EXPECT_EQ(wf.st.readVreg(gs.reg, 0), 512u);
}

TEST(HsailExec, GlobalLoadStore)
{
    KernelBuilder kb("mem");
    Val addr = kb.immU64(0x4000);
    Val v = kb.ldGlobal(DataType::U32, addr);
    Val w = kb.add(v, kb.immU32(5));
    kb.stGlobal(w, addr, 64);
    auto il = kb.build();
    MiniWf wf(*il.code);
    wf.mem.write<uint32_t>(0x4000, 37);
    wf.run();
    EXPECT_EQ(wf.mem.read<uint32_t>(0x4040), 42u);
}

TEST(HsailExec, KernargLoadBroadcasts)
{
    KernelBuilder kb("ka");
    Val a = kb.ldKernarg(DataType::U32, 4);
    kb.stGlobal(a, kb.immU64(0x9000));
    auto il = kb.build();
    MiniWf wf(*il.code);
    wf.st.kernargBase = 0x100;
    wf.mem.write<uint32_t>(0x104, 777);
    wf.run();
    EXPECT_EQ(wf.st.readVreg(a.reg, 0), 777u);
    EXPECT_EQ(wf.st.readVreg(a.reg, 63), 777u);
}

TEST(HsailExec, PrivateSegmentIsPerWorkitem)
{
    KernelBuilder kb("priv");
    kb.setPrivateBytesPerWi(16);
    Val gid = kb.workitemAbsId();
    kb.stPrivate(gid, Val{}, 0);
    Val back = kb.ldPrivate(DataType::U32, Val{}, 0);
    auto il = kb.build();
    Val r = back;
    MiniWf wf(*il.code);
    wf.st.privateBase = 0x100000;
    wf.st.privateStridePerWi = 16;
    wf.run();
    for (unsigned lane = 0; lane < 64; lane += 13)
        EXPECT_EQ(wf.st.readVreg(r.reg, lane), lane);
    // Distinct addresses were touched per work-item.
    EXPECT_EQ(wf.mem.read<uint32_t>(0x100000 + 16 * 9), 9u);
}

TEST(HsailExec, GroupSegmentSharedWithinWg)
{
    KernelBuilder kb("lds");
    Val lid = kb.workitemId();
    kb.stGroup(lid, kb.mul(lid, kb.immU32(4)));
    kb.barrier();
    // Read neighbour (lid ^ 1).
    Val n = kb.ldGroup(DataType::U32,
                       kb.mul(kb.xor_(lid, kb.immU32(1)),
                              kb.immU32(4)));
    auto il = kb.build();
    MiniWf wf(*il.code);
    wf.run();
    EXPECT_EQ(wf.st.readVreg(n.reg, 0), 1u);
    EXPECT_EQ(wf.st.readVreg(n.reg, 1), 0u);
    EXPECT_EQ(wf.st.readVreg(n.reg, 10), 11u);
}

TEST(HsailExec, AtomicAddReturnsOld)
{
    KernelBuilder kb("atomic");
    Val addr = kb.immU64(0x5000);
    Val old = kb.atomicAddGlobal(addr, kb.immU32(1));
    auto il = kb.build();
    MiniWf wf(*il.code);
    wf.run();
    // Lanes execute in lane order within the instruction.
    EXPECT_EQ(wf.st.readVreg(old.reg, 0), 0u);
    EXPECT_EQ(wf.st.readVreg(old.reg, 63), 63u);
    EXPECT_EQ(wf.mem.read<uint32_t>(0x5000), 64u);
}

TEST(HsailExec, FixedEncodingSize)
{
    auto [code, r] = buildSimple([](KernelBuilder &kb) {
        return kb.add(kb.immU32(1), kb.immU32(2));
    });
    (void)r;
    for (size_t i = 0; i < code->numInsts(); ++i)
        EXPECT_EQ(code->inst(i).sizeBytes(), 8u);
    EXPECT_EQ(code->codeBytes(), code->numInsts() * 8);
}

TEST(HsailBrig, RoundTripPreservesDisassembly)
{
    auto il = last::test::randomKernel(42);
    BrigBlob blob = encodeBrig(*il.code);
    EXPECT_EQ(blob.size() % 1, 0u);
    auto decoded = decodeBrig(blob);
    ASSERT_EQ(decoded->numInsts(), il.code->numInsts());
    EXPECT_EQ(decoded->disassemble(), il.code->disassemble());
    EXPECT_EQ(decoded->vregsUsed, il.code->vregsUsed);
    EXPECT_EQ(decoded->kernargBytes, il.code->kernargBytes);
}

TEST(HsailBrig, RecordsAreVerbose)
{
    // The container intentionally spends 64 bytes per instruction —
    // designed for finalizer consumption, not hardware fetch.
    auto il = last::test::randomKernel(1);
    BrigBlob blob = encodeBrig(*il.code);
    EXPECT_GE(blob.size(), il.code->numInsts() * BrigRecordBytes);
    // ... while the fetchable pseudo-encoding is 8 bytes/inst.
    EXPECT_EQ(il.code->codeBytes(), il.code->numInsts() * 8);
}

TEST(HsailBrig, RejectsCorruptBlobs)
{
    auto il = last::test::randomKernel(7);
    BrigBlob blob = encodeBrig(*il.code);
    blob[0] ^= 0xff;
    EXPECT_THROW(decodeBrig(blob), std::runtime_error);
    BrigBlob truncated(blob.begin(), blob.begin() + 8);
    EXPECT_THROW(decodeBrig(truncated), std::runtime_error);
}
