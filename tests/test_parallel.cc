/**
 * @file
 * Tests for the parallel experiment driver and the simulation
 * hot-path optimizations that ride with it:
 *  - parallel sweeps must be field-for-field identical to serial ones;
 *  - worker exceptions must surface to the caller, never hang;
 *  - the FunctionalMemory touched-line bitmap must preserve the old
 *    line-set footprint semantics (property test);
 *  - the GPU's idle-cycle fast-forward must be statistic-identical to
 *    full per-cycle ticking.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <unordered_set>

#include "common/random.hh"
#include "memory/functional_memory.hh"
#include "sim/parallel.hh"

using namespace last;

namespace
{

/** Field-for-field AppResult comparison (all Figure/Table stats). */
void
expectResultsEqual(const sim::AppResult &a, const sim::AppResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.isa, b.isa);
    EXPECT_EQ(a.verified, b.verified);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.dynInsts, b.dynInsts);
    EXPECT_EQ(a.valu, b.valu);
    EXPECT_EQ(a.salu, b.salu);
    EXPECT_EQ(a.vmem, b.vmem);
    EXPECT_EQ(a.smem, b.smem);
    EXPECT_EQ(a.lds, b.lds);
    EXPECT_EQ(a.branch, b.branch);
    EXPECT_EQ(a.waitcnt, b.waitcnt);
    EXPECT_EQ(a.misc, b.misc);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.vrfBankConflicts, b.vrfBankConflicts);
    EXPECT_DOUBLE_EQ(a.reuseMedian, b.reuseMedian);
    EXPECT_EQ(a.instFootprint, b.instFootprint);
    EXPECT_EQ(a.ibFlushes, b.ibFlushes);
    EXPECT_DOUBLE_EQ(a.readUniq, b.readUniq);
    EXPECT_DOUBLE_EQ(a.writeUniq, b.writeUniq);
    EXPECT_DOUBLE_EQ(a.vrfUniq, b.vrfUniq);
    EXPECT_EQ(a.dataFootprint, b.dataFootprint);
    EXPECT_DOUBLE_EQ(a.simdUtil, b.simdUtil);
    EXPECT_EQ(a.l1iMisses, b.l1iMisses);
    EXPECT_EQ(a.l1iHits, b.l1iHits);
    EXPECT_EQ(a.hazardViolations, b.hazardViolations);
    EXPECT_EQ(a.scoreboardStalls, b.scoreboardStalls);
    EXPECT_EQ(a.waitcntStalls, b.waitcntStalls);
    EXPECT_EQ(a.ibEmptyStalls, b.ibEmptyStalls);
    EXPECT_EQ(a.fuConflictStalls, b.fuConflictStalls);
    EXPECT_EQ(a.coalescedLines, b.coalescedLines);
    EXPECT_EQ(a.busyCycles, b.busyCycles);
    ASSERT_EQ(a.launches.size(), b.launches.size());
    for (size_t i = 0; i < a.launches.size(); ++i) {
        EXPECT_EQ(a.launches[i].kernel, b.launches[i].kernel);
        EXPECT_EQ(a.launches[i].cycles, b.launches[i].cycles);
        EXPECT_EQ(a.launches[i].instsIssued, b.launches[i].instsIssued);
    }
}

std::vector<sim::RunSpec>
smallSweep()
{
    workloads::WorkloadScale scale{0.25};
    std::vector<sim::RunSpec> specs;
    // Three Table 5 applications plus the four stress workloads: the
    // sweep-identity contract must hold for multi-dispatch, atomic,
    // LDS-bound, and irregular-divergence shapes too.
    for (const char *w : {"VecAdd", "ArrayBW", "BitonicSort", "atomicred",
                          "ldsswizzle", "bfsgraph", "pipeline"}) {
        specs.push_back({w, IsaKind::HSAIL, GpuConfig{}, scale});
        specs.push_back({w, IsaKind::GCN3, GpuConfig{}, scale});
    }
    return specs;
}

} // namespace

TEST(ParallelDriver, MatchesSerialFieldForField)
{
    auto specs = smallSweep();
    auto serial = sim::runMany(specs, 1);
    auto parallel = sim::runMany(specs, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE(specs[i].workload + "/" +
                     std::string(isaName(specs[i].isa)));
        expectResultsEqual(serial[i], parallel[i]);
    }
}

TEST(ParallelDriver, WorkerExceptionPropagates)
{
    // An unknown workload makes runApp throw inside a worker; the
    // driver must join all workers and rethrow, not hang or abort.
    std::vector<sim::RunSpec> specs = {
        {"VecAdd", IsaKind::HSAIL, GpuConfig{},
         workloads::WorkloadScale{0.25}},
        {"NoSuchWorkload", IsaKind::HSAIL, GpuConfig{},
         workloads::WorkloadScale{0.25}},
    };
    EXPECT_THROW(sim::runMany(specs, 4), std::runtime_error);
    EXPECT_THROW(sim::runMany(specs, 1), std::runtime_error);
}

TEST(ParallelDriver, LowestIndexExceptionWins)
{
    // Matches what a serial loop would have thrown first.
    std::vector<std::function<void()>> tasks = {
        [] { throw std::runtime_error("first"); },
        [] { throw std::logic_error("second"); },
    };
    try {
        sim::parallelInvoke(tasks, 2);
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "first");
    }
}

TEST(ParallelDriver, StealingRunsEveryTaskExactlyOnce)
{
    // Skewed durations force the pool off its static seed chunks: the
    // first quarter of the tasks (worker 0's whole chunk at 4 workers)
    // sleep long enough that the other workers drain their chunks and
    // come stealing. Whatever the schedule does, every task must run
    // exactly once.
    constexpr int N = 64;
    std::vector<std::atomic<int>> ran(N);
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < N; ++i) {
        tasks.push_back([&ran, i] {
            std::this_thread::sleep_for(
                std::chrono::microseconds(i < N / 4 ? 2000 : 20));
            ran[size_t(i)].fetch_add(1, std::memory_order_relaxed);
        });
    }
    sim::PoolStats stats;
    auto errors = sim::parallelInvokeCollect(tasks, 4, &stats);
    ASSERT_EQ(errors.size(), size_t(N));
    for (int i = 0; i < N; ++i) {
        EXPECT_EQ(ran[size_t(i)].load(), 1) << "task " << i;
        EXPECT_EQ(errors[size_t(i)], nullptr) << "task " << i;
    }
    // With this skew the idle workers must have stolen at least once
    // (worker 0 alone holds ~32 ms of sleep; the rest finish theirs in
    // under a millisecond).
    EXPECT_GT(stats.steals, 0u);
    EXPECT_GE(stats.stolenTasks, stats.steals);
}

TEST(ParallelDriver, ExceptionSlotsCorrectUnderStealing)
{
    // parallelInvokeCollect must park each exception in the *input
    // slot* of the task that threw it, no matter which worker ended up
    // running the task.
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 32; ++i) {
        if (i % 7 == 3) {
            tasks.push_back([i] {
                std::this_thread::sleep_for(std::chrono::microseconds(200));
                throw std::runtime_error("task " + std::to_string(i));
            });
        } else {
            tasks.push_back([] {
                std::this_thread::sleep_for(std::chrono::microseconds(50));
            });
        }
    }
    auto errors = sim::parallelInvokeCollect(tasks, 4);
    ASSERT_EQ(errors.size(), tasks.size());
    for (int i = 0; i < 32; ++i) {
        if (i % 7 == 3) {
            ASSERT_NE(errors[size_t(i)], nullptr) << "task " << i;
            try {
                std::rethrow_exception(errors[size_t(i)]);
            } catch (const std::runtime_error &e) {
                EXPECT_EQ(std::string(e.what()),
                          "task " + std::to_string(i));
            }
        } else {
            EXPECT_EQ(errors[size_t(i)], nullptr) << "task " << i;
        }
    }
}

TEST(ParallelDriver, StaticBaselineMatchesStealingResults)
{
    // parallelInvokeStatic exists only as the benchmark baseline, but
    // it must honor the same contract: every task once, lowest-index
    // exception rethrown.
    std::atomic<int> total{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 37; ++i)
        tasks.push_back([&total, i] { total.fetch_add(i); });
    sim::parallelInvokeStatic(tasks, 4);
    EXPECT_EQ(total.load(), 37 * 36 / 2);

    std::vector<std::function<void()>> failing = {
        [] { throw std::runtime_error("first"); },
        [] { throw std::logic_error("second"); },
    };
    try {
        sim::parallelInvokeStatic(failing, 2);
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "first");
    }
}

TEST(ParallelDriver, StealingScheduleNeverChangesResults)
{
    // The ISSUE's determinism acceptance: AppResults from the
    // work-stealing pool are field-for-field identical to LAST_JOBS=1,
    // under heavy oversubscription (7 workers on this matrix forces
    // constant stealing).
    auto specs = smallSweep();
    auto serial = sim::runMany(specs, 1);
    auto stolen = sim::runMany(specs, 7);
    ASSERT_EQ(serial.size(), stolen.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE(specs[i].workload + "/" +
                     std::string(isaName(specs[i].isa)));
        expectResultsEqual(serial[i], stolen[i]);
    }
}

TEST(ParallelDriver, JobsEnvOverride)
{
    ::setenv("LAST_JOBS", "3", 1);
    EXPECT_EQ(sim::defaultJobs(), 3u);
    ::setenv("LAST_JOBS", "0", 1); // invalid: fall back to hardware
    EXPECT_GE(sim::defaultJobs(), 1u);
    ::unsetenv("LAST_JOBS");
    EXPECT_GE(sim::defaultJobs(), 1u);
}

TEST(FastForward, StatisticIdenticalToFullTicking)
{
    workloads::WorkloadScale scale{0.25};
    GpuConfig ticked;
    ticked.fastForwardIdle = false;
    for (IsaKind isa : {IsaKind::HSAIL, IsaKind::GCN3}) {
        SCOPED_TRACE(isaName(isa));
        auto fast = sim::runApp("ArrayBW", isa, GpuConfig{}, scale);
        auto slow = sim::runApp("ArrayBW", isa, ticked, scale);
        expectResultsEqual(fast, slow);
    }
}

TEST(FunctionalMemoryFootprint, BitmapMatchesLineSetSemantics)
{
    // Property test against the old global-set implementation: replay
    // a random mix of reads and writes with odd sizes, alignments, and
    // page/line crossings, tracking touched 64 B lines in a reference
    // set; footprintLines() must match after every operation.
    mem::FunctionalMemory m;
    std::unordered_set<Addr> reference;
    Rng rng(0xf007);
    uint8_t buf[4096];
    for (int op = 0; op < 4000; ++op) {
        // Cluster addresses so pages are revisited (exercising the
        // last-page memo) but still cross pages regularly.
        Addr base = rng.nextBounded(8) * 0x100000;
        Addr addr = base + rng.nextBounded(3 * 4096);
        size_t len = rng.nextBounded(200);
        if (rng.nextBounded(8) == 0)
            len = rng.nextBounded(4096); // occasional big access
        Addr first = addr / 64;
        Addr last = (addr + (len ? len - 1 : 0)) / 64;
        for (Addr line = first; line <= last; ++line)
            reference.insert(line);
        if (rng.nextBounded(2))
            m.write(addr, buf, len);
        else
            m.read(addr, buf, len);
        ASSERT_EQ(m.footprintLines(), reference.size())
            << "op " << op << " addr " << addr << " len " << len;
    }
    EXPECT_EQ(m.footprintBytes(), reference.size() * 64);

    m.resetFootprint();
    EXPECT_EQ(m.footprintLines(), 0u);
    // Contents survive a footprint reset; re-touching recounts.
    m.write<uint32_t>(0x1234, 42);
    EXPECT_EQ(m.read<uint32_t>(0x1234), 42u);
    EXPECT_EQ(m.footprintLines(), 1u);
}

TEST(FunctionalMemoryFootprint, ZeroLengthTouchesOneLine)
{
    // The old set-based touch() recorded addr's line even for len == 0;
    // the bitmap must preserve that quirk.
    mem::FunctionalMemory m;
    uint8_t b = 0;
    m.read(0x40, &b, 0);
    EXPECT_EQ(m.footprintLines(), 1u);
}

TEST(FunctionalMemoryFootprint, PageStraddleCountsBothPages)
{
    mem::FunctionalMemory m;
    uint32_t v = 7;
    m.write(4096 - 2, v); // straddles the page boundary
    EXPECT_EQ(m.footprintLines(), 2u);
    EXPECT_EQ(m.read<uint32_t>(4096 - 2), 7u);
    EXPECT_EQ(m.numPages(), 2u);
}
