/**
 * @file
 * Fault-tolerance suite: the deterministic fault-injection subsystem,
 * the forward-progress watchdog, the recoverable error model at the
 * memory boundary, and the graceful-degradation sweep.
 *
 * The fault-sensitivity tests double as a robustness-flavoured
 * restatement of the paper's thesis: a *data* fault (bit flip) is
 * abstraction-invariant — both ISA levels fail verification with the
 * same corrupted digest — while a *timing* fault (delayed cache
 * responses) leaves functional results untouched and shifts cycle
 * counts by ISA-dependent amounts.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "memory/functional_memory.hh"
#include "sim/faultinject.hh"
#include "sim/parallel.hh"

using namespace last;

namespace
{

constexpr double TestScale = 0.25;

/** A config whose watchdog trips quickly (tests must not wait for the
 *  production default of a million stalled cycles). */
GpuConfig
watchdogConfig(const sim::FaultPlan *plan, uint64_t stall = 2000)
{
    GpuConfig cfg;
    cfg.watchdogStallCycles = stall;
    cfg.faultPlan = plan;
    return cfg;
}

/** Field-for-field AppResult comparison (mirrors the parallel-driver
 *  suite): quarantine must not perturb healthy sweep entries. */
void
expectResultsEqual(const sim::AppResult &a, const sim::AppResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.isa, b.isa);
    EXPECT_EQ(a.quarantined, b.quarantined);
    EXPECT_EQ(a.verified, b.verified);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.dynInsts, b.dynInsts);
    EXPECT_EQ(a.valu, b.valu);
    EXPECT_EQ(a.salu, b.salu);
    EXPECT_EQ(a.vmem, b.vmem);
    EXPECT_EQ(a.smem, b.smem);
    EXPECT_EQ(a.lds, b.lds);
    EXPECT_EQ(a.branch, b.branch);
    EXPECT_EQ(a.waitcnt, b.waitcnt);
    EXPECT_EQ(a.misc, b.misc);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.vrfBankConflicts, b.vrfBankConflicts);
    EXPECT_DOUBLE_EQ(a.reuseMedian, b.reuseMedian);
    EXPECT_EQ(a.instFootprint, b.instFootprint);
    EXPECT_EQ(a.ibFlushes, b.ibFlushes);
    EXPECT_DOUBLE_EQ(a.readUniq, b.readUniq);
    EXPECT_DOUBLE_EQ(a.writeUniq, b.writeUniq);
    EXPECT_DOUBLE_EQ(a.vrfUniq, b.vrfUniq);
    EXPECT_EQ(a.dataFootprint, b.dataFootprint);
    EXPECT_DOUBLE_EQ(a.simdUtil, b.simdUtil);
    EXPECT_EQ(a.l1iMisses, b.l1iMisses);
    EXPECT_EQ(a.l1iHits, b.l1iHits);
    EXPECT_EQ(a.hazardViolations, b.hazardViolations);
    EXPECT_EQ(a.scoreboardStalls, b.scoreboardStalls);
    EXPECT_EQ(a.waitcntStalls, b.waitcntStalls);
    EXPECT_EQ(a.ibEmptyStalls, b.ibEmptyStalls);
    EXPECT_EQ(a.fuConflictStalls, b.fuConflictStalls);
    EXPECT_EQ(a.coalescedLines, b.coalescedLines);
    EXPECT_EQ(a.busyCycles, b.busyCycles);
    ASSERT_EQ(a.launches.size(), b.launches.size());
    for (size_t i = 0; i < a.launches.size(); ++i) {
        EXPECT_EQ(a.launches[i].kernel, b.launches[i].kernel);
        EXPECT_EQ(a.launches[i].cycles, b.launches[i].cycles);
        EXPECT_EQ(a.launches[i].instsIssued, b.launches[i].instsIssued);
    }
}

} // namespace

TEST(FaultPlan, SeedDrivenGenerationIsDeterministic)
{
    auto a = sim::FaultPlan::random(42, 16, 10000, 0x10000,
                                    0x20000, 8, 40);
    auto b = sim::FaultPlan::random(42, 16, 10000, 0x10000, 0x20000, 8,
                                    40);
    auto c = sim::FaultPlan::random(43, 16, 10000, 0x10000, 0x20000, 8,
                                    40);
    ASSERT_EQ(a.faults.size(), 16u);
    EXPECT_EQ(a.describe(), b.describe());
    EXPECT_NE(a.describe(), c.describe());
}

TEST(FaultPlan, BuildersDescribeTheFault)
{
    EXPECT_NE(sim::FaultPlan::wedge(3, 7, 500).describe().find(
                  "wedge-wavefront@500 cu=3 wf=7"),
              std::string::npos);
    EXPECT_NE(sim::FaultPlan::bitFlip(0x10040, 3, 9).describe().find(
                  "mem-bit-flip@9 addr=0x10040 bit=3"),
              std::string::npos);
    EXPECT_NE(sim::FaultPlan::cacheDrop(1, 50).describe().find(
                  "cache-drop@50 cu=1"),
              std::string::npos);
    EXPECT_TRUE(sim::FaultPlan{}.empty());
}

TEST(Watchdog, WedgedWavefrontTripsWithUsableDump)
{
    auto plan = sim::FaultPlan::wedge(0, 0, 500);
    GpuConfig cfg = watchdogConfig(&plan);
    for (IsaKind isa : {IsaKind::HSAIL, IsaKind::GCN3}) {
        SCOPED_TRACE(isaName(isa));
        try {
            sim::runApp("VecAdd", isa, cfg, {TestScale});
            FAIL() << "expected DeadlockError";
        } catch (const DeadlockError &e) {
            const DeadlockInfo &info = e.info();
            EXPECT_GT(info.cycle, info.lastProgressCycle);
            EXPECT_GT(info.instsIssued, 0u);
            ASSERT_FALSE(info.wavefronts.empty());
            // The dump must name the wedged culprit on the CU the
            // fault targeted.
            bool found = false;
            for (const auto &wf : info.wavefronts)
                if (wf.wedged) {
                    found = true;
                    EXPECT_EQ(wf.cu, 0u);
                    EXPECT_EQ(wf.cuName, "cu_0");
                }
            EXPECT_TRUE(found);
            EXPECT_NE(e.dump().find("WEDGED"), std::string::npos);
            EXPECT_NE(e.dump().find("cu_0"), std::string::npos);
            EXPECT_NE(std::string(e.what()).find("deadlock"),
                      std::string::npos);
        }
    }
}

TEST(Watchdog, FiresAtThresholdWithAndWithoutFastForward)
{
    // The idle fast-forward must not jump past the watchdog deadline:
    // both modes trip within a tick or two of lastProgress + limit.
    auto plan = sim::FaultPlan::wedge(0, 0, 500);
    for (bool ff : {true, false}) {
        SCOPED_TRACE(ff ? "fast-forward" : "full ticking");
        GpuConfig cfg = watchdogConfig(&plan);
        cfg.fastForwardIdle = ff;
        try {
            sim::runApp("VecAdd", IsaKind::GCN3, cfg, {TestScale});
            FAIL() << "expected DeadlockError";
        } catch (const DeadlockError &e) {
            Cycle waited = e.info().cycle - e.info().lastProgressCycle;
            EXPECT_GT(waited, cfg.watchdogStallCycles);
            EXPECT_LE(waited, cfg.watchdogStallCycles + 2);
        }
    }
}

TEST(Watchdog, CycleBudgetExceeded)
{
    GpuConfig cfg;
    cfg.watchdogMaxCycles = 500; // far below any real kernel
    try {
        sim::runApp("BitonicSort", IsaKind::HSAIL, cfg, {TestScale});
        FAIL() << "expected DeadlockError";
    } catch (const DeadlockError &e) {
        EXPECT_NE(e.info().reason.find("cycle budget"),
                  std::string::npos);
    }
}

TEST(Watchdog, DroppedCacheResponseDeadlocksBothIsas)
{
    // A response that never arrives wedges the dependency model — the
    // scoreboard on HSAIL, s_waitcnt on GCN3 — and only the watchdog
    // can resolve the run.
    auto plan = sim::FaultPlan::cacheDrop(0, 50, 1);
    GpuConfig cfg = watchdogConfig(&plan);
    for (IsaKind isa : {IsaKind::HSAIL, IsaKind::GCN3}) {
        SCOPED_TRACE(isaName(isa));
        EXPECT_THROW(sim::runApp("VecAdd", isa, cfg, {TestScale}),
                     DeadlockError);
    }
}

TEST(FaultSensitivity, DataBitFlipIsAbstractionInvariant)
{
    // Global data lives at 0x10000 (the runtime's bump-allocator
    // base), so low global addresses are VecAdd's input arrays. Find a
    // flip that actually corrupts the computation, then check both ISA
    // levels agree on the damage: same verification failure, same
    // corrupted digest. Functional results are abstraction-invariant —
    // a data fault cannot tell the two levels apart.
    auto clean = sim::runBoth("VecAdd", GpuConfig{}, {TestScale});
    bool corrupted_once = false;
    for (Addr addr : {0x10000ull, 0x10040ull, 0x10080ull, 0x100c0ull}) {
        SCOPED_TRACE(addr);
        auto plan = sim::FaultPlan::bitFlip(addr, 3, 0);
        GpuConfig cfg;
        cfg.faultPlan = &plan;
        auto h = sim::runApp("VecAdd", IsaKind::HSAIL, cfg, {TestScale});
        auto g = sim::runApp("VecAdd", IsaKind::GCN3, cfg, {TestScale});
        EXPECT_EQ(h.verified, g.verified);
        EXPECT_EQ(h.digest, g.digest);
        if (!h.verified) {
            corrupted_once = true;
            EXPECT_NE(h.digest, clean.first.digest);
        }
    }
    EXPECT_TRUE(corrupted_once)
        << "no flip hit live input data; test addresses are stale";
}

TEST(FaultSensitivity, CacheDelayShiftsTimingButNotResults)
{
    // The complementary case: a timing fault is invisible to the
    // functional level (digests unchanged, verification passes) but
    // the cycle cost of the *same* delayed responses differs between
    // abstraction levels — dependence on memory timing is exactly
    // where the paper says the levels diverge.
    auto plan = sim::FaultPlan::cacheDelay(0, 0, 300);
    GpuConfig cfg;
    cfg.faultPlan = &plan;
    uint64_t delta[2] = {0, 0};
    int i = 0;
    for (IsaKind isa : {IsaKind::HSAIL, IsaKind::GCN3}) {
        SCOPED_TRACE(isaName(isa));
        auto clean = sim::runApp("VecAdd", isa, GpuConfig{}, {TestScale});
        auto slow = sim::runApp("VecAdd", isa, cfg, {TestScale});
        EXPECT_TRUE(slow.verified);
        EXPECT_EQ(slow.digest, clean.digest);
        EXPECT_EQ(slow.dynInsts, clean.dynInsts);
        ASSERT_GT(slow.cycles, clean.cycles);
        delta[i++] = slow.cycles - clean.cycles;
    }
    EXPECT_NE(delta[0], delta[1])
        << "both ISA levels paid identical cycle costs for the same "
           "timing fault";
}

TEST(MemoryGuards, OutOfRangeAccessCarriesContext)
{
    mem::FunctionalMemory m;
    m.setOwner("VecAdd/HSAIL");
    uint8_t buf[16] = {};
    try {
        m.read(mem::FunctionalMemory::AddrSpaceBytes + 0x100, buf, 16);
        FAIL() << "expected MemoryError";
    } catch (const MemoryError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Memory);
        EXPECT_EQ(e.faultAddr,
                  mem::FunctionalMemory::AddrSpaceBytes + 0x100);
        EXPECT_EQ(e.accessSize, 16u);
        EXPECT_FALSE(e.isWrite);
        EXPECT_EQ(e.owner, "VecAdd/HSAIL");
        EXPECT_NE(std::string(e.what()).find("VecAdd/HSAIL"),
                  std::string::npos);
    }
    // A range that straddles the limit is rejected even though its
    // base is in range.
    EXPECT_THROW(
        m.write(mem::FunctionalMemory::AddrSpaceBytes - 8, buf, 16),
        MemoryError);
    // In-range accesses still work, right up to the last byte.
    m.write(mem::FunctionalMemory::AddrSpaceBytes - 16, buf, 16);
}

TEST(MemoryGuards, WrapAroundIsRejected)
{
    mem::FunctionalMemory m;
    uint8_t buf[32] = {};
    try {
        m.write(~0ull - 4, buf, 32);
        FAIL() << "expected MemoryError";
    } catch (const MemoryError &e) {
        EXPECT_TRUE(e.isWrite);
        EXPECT_EQ(e.accessSize, 32u);
        EXPECT_NE(std::string(e.what()).find("wraps"),
                  std::string::npos);
    }
}

TEST(IsaAgreement, ReportsFirstDivergingField)
{
    sim::AppResult h, g;
    h.workload = g.workload = "Fake";
    h.verified = g.verified = true;
    h.digest = g.digest = 0xabcd;
    h.launches.push_back({"k0", 10, 100});
    g.launches.push_back({"k0", 12, 90}); // timing may differ freely
    EXPECT_NO_THROW(sim::checkIsaAgreement(h, g));

    g.digest = 0xdead;
    try {
        sim::checkIsaAgreement(h, g);
        FAIL() << "expected IsaMismatchError";
    } catch (const sim::IsaMismatchError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Mismatch);
        EXPECT_EQ(e.report().field, "digest");
        EXPECT_EQ(e.report().launchIndex, -1);
        EXPECT_NE(std::string(e.what()).find("digest"),
                  std::string::npos);
    }

    g.digest = h.digest;
    g.launches[0].kernel = "k1";
    try {
        sim::checkIsaAgreement(h, g);
        FAIL() << "expected IsaMismatchError";
    } catch (const sim::IsaMismatchError &e) {
        EXPECT_EQ(e.report().field, "launch.kernel");
        EXPECT_EQ(e.report().launchIndex, 0);
        EXPECT_EQ(e.report().hsailValue, "k0");
        EXPECT_EQ(e.report().gcn3Value, "k1");
    }
}

TEST(IsaAgreement, RunBothChecksTheInvariant)
{
    // The healthy path: both levels agree, so runBoth returns normally
    // with equal digests (the check threw otherwise).
    auto [h, g] = sim::runBoth("VecAdd", GpuConfig{}, {TestScale});
    EXPECT_EQ(h.digest, g.digest);
}

TEST(SweepQuarantine, CollectReturnsPerTaskErrors)
{
    int ran = 0;
    std::vector<std::function<void()>> tasks = {
        [&] { ++ran; },
        [] { throw std::runtime_error("task 1 died"); },
        [&] { ++ran; },
    };
    auto errors = sim::parallelInvokeCollect(tasks, 2);
    ASSERT_EQ(errors.size(), 3u);
    EXPECT_FALSE(errors[0]);
    ASSERT_TRUE(bool(errors[1]));
    EXPECT_FALSE(errors[2]);
    EXPECT_EQ(ran, 2);
    try {
        std::rethrow_exception(errors[1]);
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "task 1 died");
    }
}

TEST(SweepQuarantine, FailedSpecIsRetriedAndQuarantined)
{
    std::vector<sim::RunSpec> specs = {
        {"VecAdd", IsaKind::HSAIL, GpuConfig{}, {TestScale}},
        {"NoSuchWorkload", IsaKind::GCN3, GpuConfig{}, {TestScale}},
        {"ArrayBW", IsaKind::GCN3, GpuConfig{}, {TestScale}},
    };
    auto report = sim::runSweep(specs, {.jobs = 3});
    EXPECT_FALSE(report.allOk());
    ASSERT_EQ(report.results.size(), 3u);
    ASSERT_EQ(report.quarantined.size(), 1u);

    const sim::QuarantinedRun &q = report.quarantined[0];
    EXPECT_EQ(q.index, 1u);
    EXPECT_EQ(q.spec.workload, "NoSuchWorkload");
    EXPECT_TRUE(q.retried); // deterministic failures fail twice
    EXPECT_EQ(q.errorKind, "fatal");
    EXPECT_NE(q.errorMessage.find("unknown workload"),
              std::string::npos);

    EXPECT_TRUE(report.results[1].quarantined);
    EXPECT_EQ(report.results[1].errorKind, "fatal");
    EXPECT_FALSE(report.results[0].quarantined);
    EXPECT_TRUE(report.results[0].verified);
    EXPECT_FALSE(report.results[2].quarantined);
    EXPECT_TRUE(report.results[2].verified);

    EXPECT_NE(report.format().find("NoSuchWorkload"), std::string::npos);
    EXPECT_NE(report.format().find("1 of 3"), std::string::npos);
}

TEST(SweepQuarantine, TwelveSpecSweepSurvivesOneWedgedWavefront)
{
    // The acceptance scenario: a 12-spec sweep where one spec's GPU
    // wedges mid-kernel. The sweep must complete, quarantine exactly
    // the poisoned spec with a DeadlockError naming the wedged CU and
    // wavefront, and leave every other row identical to a fault-free
    // serial run.
    const std::vector<std::string> workloads = {
        "VecAdd", "ArrayBW", "BitonicSort", "SpMV", "MD", "SNAP"};
    std::vector<sim::RunSpec> specs;
    for (const auto &w : workloads) {
        specs.push_back({w, IsaKind::HSAIL, GpuConfig{}, {TestScale}});
        specs.push_back({w, IsaKind::GCN3, GpuConfig{}, {TestScale}});
    }
    ASSERT_EQ(specs.size(), 12u);

    const size_t poisoned = 5; // BitonicSort / GCN3
    auto plan = sim::FaultPlan::wedge(0, 0, 1000);
    specs[poisoned].cfg = watchdogConfig(&plan);

    auto report = sim::runSweep(specs, {.jobs = 4});

    ASSERT_EQ(report.results.size(), 12u);
    ASSERT_EQ(report.quarantined.size(), 1u);
    const sim::QuarantinedRun &q = report.quarantined[0];
    EXPECT_EQ(q.index, poisoned);
    EXPECT_EQ(q.errorKind, "deadlock");
    EXPECT_TRUE(q.retried);
    EXPECT_NE(q.detail.find("WEDGED"), std::string::npos);
    EXPECT_NE(q.detail.find("cu_0"), std::string::npos);
    EXPECT_TRUE(report.results[poisoned].quarantined);

    for (size_t i = 0; i < specs.size(); ++i) {
        if (i == poisoned)
            continue;
        SCOPED_TRACE(specs[i].workload + "/" +
                     std::string(isaName(specs[i].isa)));
        const sim::RunSpec &s = specs[i];
        auto serial = sim::runApp(s.workload, s.isa, s.cfg, s.scale);
        expectResultsEqual(report.results[i], serial);
    }
}
