/** @file GCN3 ISA semantics, encoding, and disassembly tests. */

#include <gtest/gtest.h>

#include <bit>

#include "arch/kernel_code.hh"
#include "gcn3/inst.hh"
#include "memory/functional_memory.hh"
#include "memory/lds.hh"

using namespace last;
using namespace last::gcn3;

namespace
{

struct GcnEnv
{
    mem::FunctionalMemory mem;
    mem::LdsBlock lds{1024};
    arch::WfState st;

    GcnEnv()
    {
        st.isa = IsaKind::GCN3;
        st.memory = &mem;
        st.lds = &lds;
        st.vregs.assign(64, arch::LaneVec{});
        st.initLaunch(~0ull);
    }

    void
    exec(Gcn3Inst *inst)
    {
        std::unique_ptr<Gcn3Inst> owner(inst);
        st.pendingAccess.reset();
        owner->execute(st);
    }
};

uint32_t f2b(float f) { return std::bit_cast<uint32_t>(f); }
float b2f(uint32_t b) { return std::bit_cast<float>(b); }

} // namespace

TEST(Gcn3Salu, MovAndArithmetic)
{
    GcnEnv e;
    e.exec(Gcn3Inst::sop1(Gcn3Op::S_MOV_B32, Dst::sgpr(4),
                          Src::imm(40)));
    e.exec(Gcn3Inst::sop2(Gcn3Op::S_ADD_U32, Dst::sgpr(5),
                          Src::sgpr(4), Src::imm(2)));
    EXPECT_EQ(e.st.readSgpr(5), 42u);
    e.exec(Gcn3Inst::sop2(Gcn3Op::S_MUL_I32, Dst::sgpr(6),
                          Src::sgpr(5), Src::sgpr(5)));
    EXPECT_EQ(e.st.readSgpr(6), 1764u);
}

TEST(Gcn3Salu, AddCarryChain)
{
    GcnEnv e;
    e.exec(Gcn3Inst::sop1(Gcn3Op::S_MOV_B32, Dst::sgpr(4),
                          Src::bits32(0xffffffffu)));
    e.exec(Gcn3Inst::sop2(Gcn3Op::S_ADD_U32, Dst::sgpr(6),
                          Src::sgpr(4), Src::imm(1)));
    EXPECT_TRUE(e.st.scc); // carry out
    e.exec(Gcn3Inst::sop2(Gcn3Op::S_ADDC_U32, Dst::sgpr(7),
                          Src::imm(0), Src::imm(0)));
    EXPECT_EQ(e.st.readSgpr(6), 0u);
    EXPECT_EQ(e.st.readSgpr(7), 1u);
}

TEST(Gcn3Salu, BfePackedOperand)
{
    GcnEnv e;
    e.exec(Gcn3Inst::sop1(Gcn3Op::S_MOV_B32, Dst::sgpr(4),
                          Src::bits32(0x00300100u)));
    // offset 8, width 16 -> 0x100000 packing (Table 1 usage).
    e.exec(Gcn3Inst::sop2(Gcn3Op::S_BFE_U32, Dst::sgpr(5),
                          Src::sgpr(4), Src::bits32(0x100008u)));
    EXPECT_EQ(e.st.readSgpr(5), 0x3001u);
}

TEST(Gcn3Salu, SaveExecManipulation)
{
    GcnEnv e;
    e.st.vcc = 0x00000000ffffffffull;
    e.exec(Gcn3Inst::sop1(Gcn3Op::S_AND_SAVEEXEC_B64, Dst::sgpr(10),
                          Src::vcc()));
    EXPECT_EQ(e.st.readSgpr64(10), ~0ull);  // saved old exec
    EXPECT_EQ(e.st.exec, 0x00000000ffffffffull);
    EXPECT_TRUE(e.st.scc);
    // Restore via s_mov_b64 exec.
    e.exec(Gcn3Inst::sop1(Gcn3Op::S_MOV_B64, Dst::execMask(),
                          Src::sgpr(10)));
    EXPECT_EQ(e.st.exec, ~0ull);
}

TEST(Gcn3Salu, XorRecoversElseMask)
{
    GcnEnv e;
    uint64_t entry = 0xff00ff00ff00ff00ull;
    uint64_t then_mask = 0x0f000f000f000f00ull;
    e.st.writeSgpr64(20, entry);
    e.st.exec = then_mask;
    e.exec(Gcn3Inst::sop2(Gcn3Op::S_XOR_B64, Dst::execMask(),
                          Src::sgpr(20), Src::execMask()));
    EXPECT_EQ(e.st.exec, entry ^ then_mask);
}

TEST(Gcn3Salu, CompareSetsScc)
{
    GcnEnv e;
    e.exec(Gcn3Inst::sopc(Gcn3Op::S_CMP_LT_U32, Src::imm(3),
                          Src::imm(5)));
    EXPECT_TRUE(e.st.scc);
    e.exec(Gcn3Inst::sopc(Gcn3Op::S_CMP_LT_I32, Src::imm(-1),
                          Src::imm(-5)));
    EXPECT_FALSE(e.st.scc);
    e.exec(Gcn3Inst::sop2(Gcn3Op::S_CSELECT_B32, Dst::sgpr(4),
                          Src::imm(9), Src::imm(11)));
    EXPECT_EQ(e.st.readSgpr(4), 11u);
}

TEST(Gcn3Valu, ExecMaskGatesWrites)
{
    GcnEnv e;
    e.st.exec = 0x1; // only lane 0
    e.exec(Gcn3Inst::vop1(Gcn3Op::V_MOV_B32, Dst::vgpr(3),
                          Src::imm(55)));
    EXPECT_EQ(e.st.readVreg(3, 0), 55u);
    EXPECT_EQ(e.st.readVreg(3, 1), 0u);
}

TEST(Gcn3Valu, CarryChain64BitAdd)
{
    GcnEnv e;
    for (unsigned lane = 0; lane < 64; ++lane)
        e.st.writeVreg64(4, lane, 0xfffffffful + lane);
    e.st.writeSgpr64(8, 1); // add 1 (lo) + 0 (hi)
    e.exec(Gcn3Inst::vop2(Gcn3Op::V_ADD_U32, Dst::vgpr(6),
                          Src::sgpr(8), Src::vgpr(4)));
    e.exec(Gcn3Inst::vop2(Gcn3Op::V_ADDC_U32, Dst::vgpr(7),
                          Src::vgpr(5), Src::imm(0)));
    EXPECT_EQ(e.st.readVreg64(6, 0), 0x100000000ull);
    EXPECT_EQ(e.st.readVreg64(6, 63), 0x100000000ull + 63);
}

TEST(Gcn3Valu, CmpWritesVccPerLane)
{
    GcnEnv e;
    for (unsigned lane = 0; lane < 64; ++lane)
        e.st.writeVreg(2, lane, lane);
    e.exec(Gcn3Inst::vcmp(Gcn3Op::V_CMP_LT_U32, Src::vgpr(2),
                          Src::imm(8)));
    EXPECT_EQ(e.st.vcc, 0xffull);
    e.exec(Gcn3Inst::vop2(Gcn3Op::V_CNDMASK_B32, Dst::vgpr(3),
                          Src::imm(1), Src::imm(2)));
    EXPECT_EQ(e.st.readVreg(3, 0), 2u); // vcc set -> src1
    EXPECT_EQ(e.st.readVreg(3, 8), 1u);
}

TEST(Gcn3Valu, InactiveLanesClearVccOnCompare)
{
    GcnEnv e;
    e.st.exec = 0xf;
    e.st.vcc = ~0ull;
    for (unsigned lane = 0; lane < 64; ++lane)
        e.st.writeVreg(2, lane, 1);
    e.exec(Gcn3Inst::vcmp(Gcn3Op::V_CMP_EQ_U32, Src::vgpr(2),
                          Src::imm(1)));
    EXPECT_EQ(e.st.vcc, 0xfull);
}

TEST(Gcn3Valu, FloatOpsAndNegModifier)
{
    GcnEnv e;
    for (unsigned lane = 0; lane < 64; ++lane) {
        e.st.writeVreg(2, lane, f2b(3.0f));
        e.st.writeVreg(3, lane, f2b(2.0f));
    }
    e.exec(Gcn3Inst::vop3(Gcn3Op::V_FMA_F32, Dst::vgpr(4),
                          Src::vgpr(2), Src::vgpr(3),
                          Src::bits32(f2b(1.0f)), 0b001));
    // (-3) * 2 + 1 = -5.
    EXPECT_FLOAT_EQ(b2f(e.st.readVreg(4, 0)), -5.0f);
}

TEST(Gcn3Valu, F64InlineConstant)
{
    GcnEnv e;
    for (unsigned lane = 0; lane < 64; ++lane)
        e.st.writeVreg64(2, lane, std::bit_cast<uint64_t>(0.5));
    e.exec(Gcn3Inst::vop3(Gcn3Op::V_ADD_F64, Dst::vgpr(4),
                          Src::vgpr(2), Src::f64const(1.0), Src{}));
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(e.st.readVreg64(4, 0)),
                     1.5);
}

TEST(Gcn3Valu, DivFixupProducesExactQuotient)
{
    GcnEnv e;
    for (unsigned lane = 0; lane < 64; ++lane) {
        e.st.writeVreg64(2, lane, std::bit_cast<uint64_t>(1.0)); // q est
        e.st.writeVreg64(4, lane, std::bit_cast<uint64_t>(3.0)); // den
        e.st.writeVreg64(6, lane, std::bit_cast<uint64_t>(2.0)); // num
    }
    e.exec(Gcn3Inst::vop3(Gcn3Op::V_DIV_FIXUP_F64, Dst::vgpr(8),
                          Src::vgpr(2), Src::vgpr(4), Src::vgpr(6)));
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(e.st.readVreg64(8, 0)),
                     2.0 / 3.0);
}

TEST(Gcn3Mem, SmemLoadsThroughSbase)
{
    GcnEnv e;
    e.mem.write<uint32_t>(0x1010, 0xabcd);
    e.st.writeSgpr64(4, 0x1000);
    e.exec(Gcn3Inst::smem(Gcn3Op::S_LOAD_DWORD, Dst::sgpr(10), 4,
                          0x10));
    EXPECT_EQ(e.st.readSgpr(10), 0xabcdu);
    ASSERT_TRUE(e.st.pendingAccess.has_value());
    EXPECT_EQ(e.st.pendingAccess->kind,
              arch::MemAccess::Kind::ScalarLoad);
}

TEST(Gcn3Mem, FlatLoadStorePerLane)
{
    GcnEnv e;
    for (unsigned lane = 0; lane < 64; ++lane) {
        e.st.writeVreg64(2, lane, 0x2000 + lane * 4);
        e.st.writeVreg(4, lane, lane * 3);
    }
    e.exec(Gcn3Inst::flat(Gcn3Op::FLAT_STORE_DWORD, Dst::none(), 2, 4));
    EXPECT_EQ(e.mem.read<uint32_t>(0x2000 + 40), 30u);
    e.exec(Gcn3Inst::flat(Gcn3Op::FLAT_LOAD_DWORD, Dst::vgpr(6), 2));
    EXPECT_EQ(e.st.readVreg(6, 10), 30u);
}

TEST(Gcn3Mem, FlatAtomicAdd)
{
    GcnEnv e;
    for (unsigned lane = 0; lane < 64; ++lane) {
        e.st.writeVreg64(2, lane, 0x3000);
        e.st.writeVreg(4, lane, 1);
    }
    e.exec(Gcn3Inst::flat(Gcn3Op::FLAT_ATOMIC_ADD, Dst::vgpr(6), 2, 4));
    EXPECT_EQ(e.mem.read<uint32_t>(0x3000), 64u);
    EXPECT_EQ(e.st.readVreg(6, 0), 0u);
    EXPECT_EQ(e.st.readVreg(6, 63), 63u);
}

TEST(Gcn3Mem, DsReadWrite)
{
    GcnEnv e;
    for (unsigned lane = 0; lane < 64; ++lane) {
        e.st.writeVreg(2, lane, lane * 4);
        e.st.writeVreg(3, lane, lane + 100);
    }
    e.exec(Gcn3Inst::ds(Gcn3Op::DS_WRITE_B32, Dst::none(), 2, 3, 0));
    e.exec(Gcn3Inst::ds(Gcn3Op::DS_READ_B32, Dst::vgpr(5), 2, 0, 0));
    EXPECT_EQ(e.st.readVreg(5, 7), 107u);
}

TEST(Gcn3Encoding, VariableLengths)
{
    // 32-bit formats.
    std::unique_ptr<Gcn3Inst> mov(Gcn3Inst::sop1(
        Gcn3Op::S_MOV_B32, Dst::sgpr(0), Src::sgpr(1)));
    EXPECT_EQ(mov->sizeBytes(), 4u);
    // A literal widens by 4.
    std::unique_ptr<Gcn3Inst> movlit(Gcn3Inst::sop1(
        Gcn3Op::S_MOV_B32, Dst::sgpr(0), Src::bits32(0x12345678)));
    EXPECT_EQ(movlit->sizeBytes(), 8u);
    // Inline constants do not.
    std::unique_ptr<Gcn3Inst> movinl(Gcn3Inst::sop1(
        Gcn3Op::S_MOV_B32, Dst::sgpr(0), Src::imm(7)));
    EXPECT_EQ(movinl->sizeBytes(), 4u);
    // 64-bit formats.
    std::unique_ptr<Gcn3Inst> smem(Gcn3Inst::smem(
        Gcn3Op::S_LOAD_DWORD, Dst::sgpr(0), 4, 0));
    EXPECT_EQ(smem->sizeBytes(), 8u);
    std::unique_ptr<Gcn3Inst> flat(Gcn3Inst::flat(
        Gcn3Op::FLAT_LOAD_DWORD, Dst::vgpr(0), 2));
    EXPECT_EQ(flat->sizeBytes(), 8u);
    std::unique_ptr<Gcn3Inst> fma(Gcn3Inst::vop3(
        Gcn3Op::V_FMA_F32, Dst::vgpr(0), Src::vgpr(1), Src::vgpr(2),
        Src::vgpr(3)));
    EXPECT_EQ(fma->sizeBytes(), 8u);
    // VOP2 with a literal: 4 + 4.
    std::unique_ptr<Gcn3Inst> v2(Gcn3Inst::vop2(
        Gcn3Op::V_ADD_F32, Dst::vgpr(0), Src::bits32(0x3fc00000),
        Src::vgpr(1)));
    EXPECT_EQ(v2->sizeBytes(), 8u);
}

TEST(Gcn3Encoding, WaitcntThresholds)
{
    std::unique_ptr<Gcn3Inst> w(Gcn3Inst::waitcnt(0, 3));
    EXPECT_TRUE(w->is(arch::IsWaitcnt));
    EXPECT_EQ(w->vmThreshold(), 0u);
    EXPECT_EQ(w->lgkmThreshold(), 3u);
    std::unique_ptr<Gcn3Inst> w2(Gcn3Inst::waitcnt(-1, 0));
    EXPECT_EQ(w2->vmThreshold(), 64u); // don't care
}

TEST(Gcn3Branch, TargetsResolveToOffsets)
{
    arch::KernelCode code(IsaKind::GCN3, "br");
    code.append(std::unique_ptr<arch::Instruction>(Gcn3Inst::sop1(
        Gcn3Op::S_MOV_B32, Dst::sgpr(4), Src::bits32(0xdeadbeef))));
    code.append(std::unique_ptr<arch::Instruction>(
        Gcn3Inst::branch(Gcn3Op::S_BRANCH, 3)));
    code.append(std::unique_ptr<arch::Instruction>(Gcn3Inst::sop1(
        Gcn3Op::S_MOV_B32, Dst::sgpr(5), Src::imm(1))));
    code.append(std::unique_ptr<arch::Instruction>(
        Gcn3Inst::sopp(Gcn3Op::S_ENDPGM)));
    code.seal();
    resolveBranchTargets(code);
    const auto &br = static_cast<const Gcn3Inst &>(code.inst(1));
    EXPECT_EQ(br.targetOffset(), code.offsetOf(3));
}

TEST(Gcn3Branch, ConditionalBranches)
{
    GcnEnv e;
    std::unique_ptr<Gcn3Inst> br(
        Gcn3Inst::branch(Gcn3Op::S_CBRANCH_SCC1, 0));
    br->setTargetOffset(100);
    e.st.pc = 0;
    e.st.scc = true;
    br->execute(e.st);
    EXPECT_EQ(e.st.nextPc, 100u);
    e.st.scc = false;
    br->execute(e.st);
    EXPECT_EQ(e.st.nextPc, br->sizeBytes());

    std::unique_ptr<Gcn3Inst> bez(
        Gcn3Inst::branch(Gcn3Op::S_CBRANCH_EXECZ, 0));
    bez->setTargetOffset(64);
    e.st.exec = 0;
    bez->execute(e.st);
    EXPECT_EQ(e.st.nextPc, 64u);
}

TEST(Gcn3Disasm, ReadableStrings)
{
    std::unique_ptr<Gcn3Inst> i1(Gcn3Inst::sop2(
        Gcn3Op::S_AND_SAVEEXEC_B64, Dst::sgpr(12), Src::vcc(),
        Src{}));
    EXPECT_NE(i1->disassemble().find("s_and_saveexec_b64"),
              std::string::npos);
    EXPECT_NE(i1->disassemble().find("vcc"), std::string::npos);
    std::unique_ptr<Gcn3Inst> i2(Gcn3Inst::waitcnt(0, 0));
    EXPECT_NE(i2->disassemble().find("vmcnt(0)"), std::string::npos);
    std::unique_ptr<Gcn3Inst> i3(Gcn3Inst::flat(
        Gcn3Op::FLAT_LOAD_DWORD, Dst::vgpr(3), 1));
    EXPECT_NE(i3->disassemble().find("v[1:2]"), std::string::npos);
}
