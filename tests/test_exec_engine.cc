/**
 * @file
 * Differential suite for the predecoded direct-threaded execution
 * engine (DESIGN.md §4f): the engine is a pure performance
 * transformation, so every workload run through the predecoded
 * handlers must be *field-for-field identical* — every statistic,
 * digest, and launch record — to the same run through the legacy
 * virtual-dispatch reference (GpuConfig::execReference), and the
 * bench-cache rows serialized from the two runs must be byte-identical
 * files. A third test pins the predecode contract itself: every
 * ExecMeta record must agree with the virtual methods it replaces.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "arch/exec_meta.hh"
#include "arch/kernel_code.hh"
#include "finalizer/finalizer.hh"
#include "finalizer/regalloc.hh"
#include "helpers.hh"
#include "runtime/runtime.hh"
#include "sim/bench_cache.hh"
#include "sim/parallel.hh"

using namespace last;

namespace
{

/** Field-for-field AppResult comparison (all Figure/Table stats);
 *  mirrors the sweep-identity check in test_parallel.cc. */
void
expectResultsEqual(const sim::AppResult &a, const sim::AppResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.isa, b.isa);
    EXPECT_EQ(a.verified, b.verified);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.dynInsts, b.dynInsts);
    EXPECT_EQ(a.valu, b.valu);
    EXPECT_EQ(a.salu, b.salu);
    EXPECT_EQ(a.vmem, b.vmem);
    EXPECT_EQ(a.smem, b.smem);
    EXPECT_EQ(a.lds, b.lds);
    EXPECT_EQ(a.branch, b.branch);
    EXPECT_EQ(a.waitcnt, b.waitcnt);
    EXPECT_EQ(a.misc, b.misc);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.vrfBankConflicts, b.vrfBankConflicts);
    EXPECT_DOUBLE_EQ(a.reuseMedian, b.reuseMedian);
    EXPECT_EQ(a.instFootprint, b.instFootprint);
    EXPECT_EQ(a.ibFlushes, b.ibFlushes);
    EXPECT_DOUBLE_EQ(a.readUniq, b.readUniq);
    EXPECT_DOUBLE_EQ(a.writeUniq, b.writeUniq);
    EXPECT_DOUBLE_EQ(a.vrfUniq, b.vrfUniq);
    EXPECT_EQ(a.dataFootprint, b.dataFootprint);
    EXPECT_DOUBLE_EQ(a.simdUtil, b.simdUtil);
    EXPECT_EQ(a.l1iMisses, b.l1iMisses);
    EXPECT_EQ(a.l1iHits, b.l1iHits);
    EXPECT_EQ(a.hazardViolations, b.hazardViolations);
    EXPECT_EQ(a.scoreboardStalls, b.scoreboardStalls);
    EXPECT_EQ(a.waitcntStalls, b.waitcntStalls);
    EXPECT_EQ(a.ibEmptyStalls, b.ibEmptyStalls);
    EXPECT_EQ(a.fuConflictStalls, b.fuConflictStalls);
    EXPECT_EQ(a.coalescedLines, b.coalescedLines);
    EXPECT_EQ(a.busyCycles, b.busyCycles);
    ASSERT_EQ(a.launches.size(), b.launches.size());
    for (size_t i = 0; i < a.launches.size(); ++i) {
        EXPECT_EQ(a.launches[i].kernel, b.launches[i].kernel);
        EXPECT_EQ(a.launches[i].cycles, b.launches[i].cycles);
        EXPECT_EQ(a.launches[i].instsIssued, b.launches[i].instsIssued);
    }
}

/** The engine-differential matrix: Table 5 representatives plus every
 *  stress shape (atomics, LDS swizzles, nested divergence,
 *  multi-dispatch pipelines) at both ISA levels, with `execReference`
 *  forced to the requested engine. */
std::vector<sim::RunSpec>
engineSweep(bool reference)
{
    workloads::WorkloadScale scale{0.25};
    GpuConfig cfg;
    cfg.execReference = reference;
    std::vector<sim::RunSpec> specs;
    for (const char *w : {"VecAdd", "ArrayBW", "BitonicSort", "atomicred",
                          "ldsswizzle", "bfsgraph", "pipeline"}) {
        specs.push_back({w, IsaKind::HSAIL, cfg, scale});
        specs.push_back({w, IsaKind::GCN3, cfg, scale});
    }
    return specs;
}

} // namespace

TEST(ExecEngine, MatchesReferenceFieldForField)
{
    auto fast = engineSweep(false);
    auto ref = engineSweep(true);
    auto fastRes = sim::runMany(fast);
    auto refRes = sim::runMany(ref);
    ASSERT_EQ(fastRes.size(), refRes.size());
    for (size_t i = 0; i < fastRes.size(); ++i) {
        SCOPED_TRACE(fast[i].workload + "/" +
                     std::string(isaName(fast[i].isa)));
        expectResultsEqual(fastRes[i], refRes[i]);
    }
}

TEST(ExecEngine, BenchCacheRowsByteIdentical)
{
    // The sweep backend caches AppResults; an engine that changed any
    // stat in any way the field comparison missed (serialization
    // precision, row ordering) would surface here as a byte diff.
    auto fast = engineSweep(false);
    auto ref = engineSweep(true);
    auto fastRes = sim::runMany(fast);
    auto refRes = sim::runMany(ref);
    ASSERT_EQ(fastRes.size(), refRes.size());

    auto serialize = [](const std::vector<sim::RunSpec> &specs,
                        const std::vector<sim::AppResult> &results) {
        sim::BenchCacheFile cache;
        cache.scale = specs.front().scale.factor;
        for (size_t i = 0; i < specs.size(); ++i)
            cache.rows.push_back(
                {sim::specCacheKey(specs[i]), results[i]});
        std::ostringstream os;
        sim::writeBenchCache(os, cache);
        return os.str();
    };
    EXPECT_EQ(serialize(fast, fastRes), serialize(ref, refRes));
}

TEST(ExecEngine, PredecodedMetaAgreesWithInstruction)
{
    // The predecode contract: every ExecMeta field the timing model
    // consumes must agree with the virtual method it replaced, for
    // every instruction of both ISA levels, across latency configs.
    GpuConfig cfgs[2];
    cfgs[1].valuLatency += 3;
    cfgs[1].dramLatency += 100;
    cfgs[1].ldsLatency += 2;
    cfgs[1].saluLatency += 1;
    cfgs[1].branchLatency += 2;

    auto checkKernel = [&](const arch::KernelCode &code) {
        const auto &metas = code.execMetas();
        ASSERT_EQ(metas.size(), code.numInsts());
        for (size_t i = 0; i < metas.size(); ++i) {
            const arch::ExecMeta &m = metas[i];
            const arch::Instruction &in = code.inst(i);
            SCOPED_TRACE(code.name() + ": " + in.disassemble());
            EXPECT_EQ(m.inst, &in);
            EXPECT_NE(m.handler, nullptr);
            EXPECT_EQ(m.flags, in.flags());
            EXPECT_EQ(m.fu, in.fuType());
            EXPECT_EQ(unsigned(m.size), in.sizeBytes());
            EXPECT_EQ(unsigned(m.size), code.sizeOf(i));
            for (const GpuConfig &cfg : cfgs)
                EXPECT_EQ(m.latency(cfg), in.latency(cfg));
            EXPECT_EQ(m.numOps, in.regOps().size());
            for (size_t k = 0; k < in.regOps().size(); ++k) {
                EXPECT_EQ(m.ops[k].idx, in.regOps()[k].idx);
                EXPECT_EQ(m.ops[k].width, in.regOps()[k].width);
                EXPECT_EQ(m.ops[k].cls, in.regOps()[k].cls);
                EXPECT_EQ(m.ops[k].isDef, in.regOps()[k].isDef);
            }
        }
    };

    runtime::Runtime rt;
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        auto il = last::test::randomKernel(seed);
        finalizer::compactIlRegisters(il);
        checkKernel(*il.code);
        auto gcn = finalizer::finalize(il, rt.config());
        checkKernel(*gcn);
    }
}
