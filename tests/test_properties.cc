/**
 * @file
 * Parameterized property sweeps:
 *  - GCN3 VALU semantics against host arithmetic over an operand grid;
 *  - nested control-flow structures execute identically on both ISAs;
 *  - per-workload abstraction-gap invariants (the paper's qualitative
 *    claims as assertions).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <vector>

#include "cu/probes.hh"
#include "finalizer/finalizer.hh"
#include "finalizer/regalloc.hh"
#include "gcn3/inst.hh"
#include "helpers.hh"
#include "runtime/runtime.hh"
#include "sim/experiment.hh"

using namespace last;

// ---------------------------------------------------------------------
// GCN3 VALU semantics sweep.
// ---------------------------------------------------------------------

namespace
{

struct ValuCase
{
    const char *name;
    gcn3::Gcn3Op op;
    uint32_t a, b;
    uint32_t expect;
};

uint32_t f2b(float f) { return std::bit_cast<uint32_t>(f); }

const ValuCase valuCases[] = {
    {"add_small", gcn3::Gcn3Op::V_ADD_U32, 3, 4, 7},
    {"add_wrap", gcn3::Gcn3Op::V_ADD_U32, 0xffffffffu, 2, 1},
    {"sub", gcn3::Gcn3Op::V_SUB_U32, 10, 3, 7},
    {"sub_borrow", gcn3::Gcn3Op::V_SUB_U32, 1, 3, 0xfffffffeu},
    {"mul_lo", gcn3::Gcn3Op::V_MUL_LO_U32, 100000, 100000,
     uint32_t(100000ull * 100000ull)},
    {"mul_hi", gcn3::Gcn3Op::V_MUL_HI_U32, 0x80000000u, 8, 4},
    {"and", gcn3::Gcn3Op::V_AND_B32, 0xff00ff00u, 0x0ff00ff0u,
     0x0f000f00u},
    {"or", gcn3::Gcn3Op::V_OR_B32, 0xf0u, 0x0fu, 0xffu},
    {"xor", gcn3::Gcn3Op::V_XOR_B32, 0xaaaau, 0xffffu, 0x5555u},
    {"lshl_rev", gcn3::Gcn3Op::V_LSHLREV_B32, 4, 3, 48},
    {"lshr_rev", gcn3::Gcn3Op::V_LSHRREV_B32, 4, 48, 3},
    {"ashr_rev", gcn3::Gcn3Op::V_ASHRREV_I32, 2, 0x80000000u,
     0xe0000000u},
    {"min_u", gcn3::Gcn3Op::V_MIN_U32, 5, 9, 5},
    {"max_u", gcn3::Gcn3Op::V_MAX_U32, 5, 9, 9},
    {"min_i", gcn3::Gcn3Op::V_MIN_I32, uint32_t(-4), 3, uint32_t(-4)},
    {"max_i", gcn3::Gcn3Op::V_MAX_I32, uint32_t(-4), 3, 3},
    {"add_f32", gcn3::Gcn3Op::V_ADD_F32, f2b(1.5f), f2b(2.25f),
     f2b(3.75f)},
    {"mul_f32", gcn3::Gcn3Op::V_MUL_F32, f2b(3.0f), f2b(-2.0f),
     f2b(-6.0f)},
    {"min_f32", gcn3::Gcn3Op::V_MIN_F32, f2b(3.0f), f2b(-2.0f),
     f2b(-2.0f)},
    {"max_f32", gcn3::Gcn3Op::V_MAX_F32, f2b(3.0f), f2b(-2.0f),
     f2b(3.0f)},
};

class Gcn3ValuSweep : public ::testing::TestWithParam<ValuCase>
{
};

} // namespace

TEST_P(Gcn3ValuSweep, MatchesHostSemantics)
{
    const ValuCase &c = GetParam();
    mem::FunctionalMemory m;
    arch::WfState st;
    st.isa = IsaKind::GCN3;
    st.memory = &m;
    st.vregs.assign(8, arch::LaneVec{});
    st.initLaunch(~0ull);
    for (unsigned lane = 0; lane < 64; ++lane) {
        st.writeVreg(1, lane, c.a);
        st.writeVreg(2, lane, c.b);
    }
    std::unique_ptr<gcn3::Gcn3Inst> inst(gcn3::Gcn3Inst::vop2(
        c.op, gcn3::Dst::vgpr(3), gcn3::Src::vgpr(1),
        gcn3::Src::vgpr(2)));
    inst->execute(st);
    EXPECT_EQ(st.readVreg(3, 0), c.expect) << c.name;
    EXPECT_EQ(st.readVreg(3, 63), c.expect) << c.name;
}

INSTANTIATE_TEST_SUITE_P(Ops, Gcn3ValuSweep,
                         ::testing::ValuesIn(valuCases),
                         [](const auto &info) {
                             return std::string(info.param.name);
                         });

// ---------------------------------------------------------------------
// Nested control-flow structures: both ISAs, identical results.
// ---------------------------------------------------------------------

namespace
{

/** Structure id encodes a nesting pattern to generate. */
class ControlShapeSweep : public ::testing::TestWithParam<int>
{
  public:
    static hsail::IlKernel
    makeKernel(int shape, Addr out)
    {
        using namespace hsail;
        KernelBuilder kb("shape" + std::to_string(shape));
        Val gid = kb.workitemAbsId();
        Val acc = kb.mov(gid);
        Val one = kb.immU32(1);

        auto divergentIf = [&](unsigned mod, unsigned bump) {
            Val c = kb.cmp(CmpOp::Lt, kb.and_(gid, kb.immU32(7)),
                           kb.immU32(mod));
            kb.ifBegin(c);
            kb.emitAluTo(Opcode::Add, acc, acc, kb.immU32(bump));
            kb.ifEnd();
        };
        auto loop = [&](unsigned trips, unsigned bump) {
            Val i = kb.immU32(0);
            kb.doBegin();
            kb.emitAluTo(Opcode::Add, acc, acc, kb.immU32(bump));
            kb.emitAluTo(Opcode::Add, i, i, one);
            kb.doEnd(kb.cmp(CmpOp::Lt, i, kb.immU32(trips)));
        };

        switch (shape) {
          case 0: // if inside loop
            {
                Val i = kb.immU32(0);
                kb.doBegin();
                divergentIf(3, 10);
                kb.emitAluTo(Opcode::Add, i, i, one);
                kb.doEnd(kb.cmp(CmpOp::Lt, i, kb.immU32(4)));
            }
            break;
          case 1: // loop inside divergent if
            {
                Val c = kb.cmp(CmpOp::Lt, kb.and_(gid, kb.immU32(3)),
                               kb.immU32(2));
                kb.ifBegin(c);
                loop(3, 7);
                kb.ifEnd();
            }
            break;
          case 2: // if-else chains
            divergentIf(2, 100);
            {
                Val c = kb.cmp(CmpOp::Ge, kb.and_(gid, kb.immU32(7)),
                               kb.immU32(4));
                kb.ifBegin(c);
                kb.emitAluTo(Opcode::Add, acc, acc, kb.immU32(1000));
                kb.ifElse();
                kb.emitAluTo(Opcode::Add, acc, acc, kb.immU32(2000));
                kb.ifEnd();
            }
            break;
          case 3: // triple nesting: loop { if { if } }
            {
                Val i = kb.immU32(0);
                kb.doBegin();
                {
                    Val c1 = kb.cmp(CmpOp::Lt,
                                    kb.and_(gid, kb.immU32(7)),
                                    kb.immU32(5));
                    kb.ifBegin(c1);
                    {
                        Val c2 = kb.cmp(CmpOp::Lt,
                                        kb.and_(gid, kb.immU32(3)),
                                        kb.immU32(2));
                        kb.ifBegin(c2);
                        kb.emitAluTo(Opcode::Add, acc, acc,
                                     kb.immU32(3));
                        kb.ifEnd();
                        kb.emitAluTo(Opcode::Add, acc, acc, one);
                    }
                    kb.ifEnd();
                }
                kb.emitAluTo(Opcode::Add, i, i, one);
                kb.doEnd(kb.cmp(CmpOp::Lt, i, kb.immU32(3)));
            }
            break;
          case 4: // divergent loop (trip count from lane id)
            {
                Val j = kb.and_(gid, kb.immU32(7));
                kb.doBegin();
                kb.emitAluTo(Opcode::Add, acc, acc, kb.immU32(5));
                kb.emitAluTo(Opcode::Add, j, j, one);
                kb.doEnd(kb.cmp(CmpOp::Lt, j, kb.immU32(8)));
            }
            break;
          default:
            break;
        }

        Val off = kb.cvt(DataType::U64, kb.mul(gid, kb.immU32(4)));
        kb.stGlobal(acc, kb.add(kb.immU64(out), off));
        return kb.build();
    }
};

} // namespace

TEST_P(ControlShapeSweep, BothIsasAgree)
{
    constexpr Addr out = 0x40000;
    constexpr unsigned grid = 256;
    std::vector<uint32_t> results[2];
    int k = 0;
    for (IsaKind isa : {IsaKind::HSAIL, IsaKind::GCN3}) {
        runtime::Runtime rt;
        auto il = makeKernel(GetParam(), out);
        finalizer::compactIlRegisters(il);
        std::unique_ptr<arch::KernelCode> gcn;
        arch::KernelCode *code = il.code.get();
        if (isa == IsaKind::GCN3) {
            gcn = finalizer::finalize(il, rt.config());
            code = gcn.get();
        }
        rt.dispatch(*code, grid, 256, nullptr, 0);
        results[k].resize(grid);
        rt.readGlobal(out, results[k].data(), grid * 4);
        EXPECT_EQ(rt.gpu().sumCuStat("hazardViolations"), 0.0);
        ++k;
    }
    EXPECT_EQ(results[0], results[1]) << "shape " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Shapes, ControlShapeSweep,
                         ::testing::Range(0, 5));

// ---------------------------------------------------------------------
// Per-workload abstraction-gap invariants (the paper's claims).
// ---------------------------------------------------------------------

namespace
{

class AbstractionGapSweep
    : public ::testing::TestWithParam<const char *>
{
  public:
    static const std::pair<sim::AppResult, sim::AppResult> &
    results(const std::string &name)
    {
        static std::map<std::string,
                        std::pair<sim::AppResult, sim::AppResult>>
            cache;
        auto it = cache.find(name);
        if (it == cache.end()) {
            workloads::WorkloadScale s{0.5};
            it = cache.emplace(name, sim::runBoth(name, GpuConfig{}, s))
                     .first;
        }
        return it->second;
    }
};

} // namespace

TEST_P(AbstractionGapSweep, SimdUtilizationSurvivesAbstraction)
{
    const auto &[h, g] = results(GetParam());
    // Table 6: utilization is a program property, not an ISA one.
    EXPECT_NEAR(h.simdUtil, g.simdUtil, 0.10) << GetParam();
}

TEST_P(AbstractionGapSweep, ScalarWorkOnlyUnderMachineIsa)
{
    const auto &[h, g] = results(GetParam());
    EXPECT_EQ(h.salu + h.smem + h.waitcnt, 0u);
    EXPECT_GT(g.salu + g.smem, 0u);
    EXPECT_GT(g.waitcnt, 0u);
}

TEST_P(AbstractionGapSweep, MachineIsaExecutesMore)
{
    const auto &[h, g] = results(GetParam());
    EXPECT_GT(g.dynInsts, h.dynInsts);
    EXPECT_LT(g.dynInsts, h.dynInsts * 4); // sanity bound
}

TEST_P(AbstractionGapSweep, VectorAluDominatesHsail)
{
    const auto &[h, g] = results(GetParam());
    (void)g;
    // "All HSAIL ALU instructions are vector instructions."
    EXPECT_GT(h.valu, h.dynInsts / 2) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Table5, AbstractionGapSweep,
    ::testing::Values("ArrayBW", "BitonicSort", "CoMD", "FFT", "HPGMG",
                      "MD", "SNAP", "SpMV", "XSBench"));

// ---------------------------------------------------------------------
// Execute-path fast paths (cu/probes.hh) against their sort-based
// reference implementations: the probe rewrite is only admissible if
// the statistics it feeds are bit-identical.
// ---------------------------------------------------------------------

namespace
{

/** xorshift64: deterministic across platforms, no <random> variance. */
struct XorShift
{
    uint64_t s;
    uint64_t
    next()
    {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        return s;
    }
};

unsigned
refUniqueCount(const uint32_t *lanes, uint64_t mask)
{
    std::vector<uint32_t> vals;
    for (unsigned lane = 0; lane < 64; ++lane)
        if (mask & (1ull << lane))
            vals.push_back(lanes[lane]);
    std::sort(vals.begin(), vals.end());
    vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
    return unsigned(vals.size());
}

std::vector<Addr>
refCoalesce(const std::vector<Addr> &lane_addrs, uint64_t mask,
            uint64_t bytes_per_lane)
{
    std::vector<Addr> lines;
    for (unsigned lane = 0; lane < 64; ++lane) {
        if (!(mask & (1ull << lane)))
            continue;
        Addr first = lane_addrs[lane] / 64;
        Addr last = (lane_addrs[lane] + bytes_per_lane - 1) / 64;
        lines.push_back(first);
        if (last != first)
            lines.push_back(last);
    }
    std::sort(lines.begin(), lines.end());
    lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
    return lines;
}

} // namespace

TEST(ProbeFastPaths, HashUniqCountMatchesSortReference)
{
    cu::LaneUniqCounter counter;
    XorShift rng{0x5eed5eedull};
    for (int iter = 0; iter < 2000; ++iter) {
        uint64_t mask = rng.next();
        switch (iter % 5) {
          case 0: mask = ~0ull; break;                    // full WF
          case 1: mask = 0; break;                        // all inactive
          case 2: mask &= 0xffull; break;                 // partial WF
          case 3: mask = 1ull << (rng.next() % 64); break; // single lane
          default: break;                                  // random
        }
        uint32_t lanes[64];
        // Mix duplicate-heavy (small value range) and unique-heavy
        // patterns: both matter for an open-addressed counter.
        uint32_t range = (iter % 2) ? 8 : 0xffffffffu;
        for (auto &v : lanes)
            v = uint32_t(rng.next()) & range;
        EXPECT_EQ(counter.count(lanes, mask),
                  refUniqueCount(lanes, mask))
            << "iter " << iter << " mask " << mask;
    }
}

TEST(ProbeFastPaths, CtzIterationVisitsExactlyTheMaskAscending)
{
    XorShift rng{0xabcdull};
    for (int iter = 0; iter < 500; ++iter) {
        uint64_t mask = rng.next() & rng.next(); // sparse-ish
        std::vector<unsigned> ref, got;
        for (unsigned lane = 0; lane < 64; ++lane)
            if (mask & (1ull << lane))
                ref.push_back(lane);
        for (uint64_t m = mask; m; m &= m - 1)
            got.push_back(unsigned(findLsb(m)));
        EXPECT_EQ(got, ref);
    }
}

TEST(ProbeFastPaths, InsertionCoalescingMatchesSortReference)
{
    XorShift rng{0xc0a1e5ceull};
    for (int iter = 0; iter < 2000; ++iter) {
        uint64_t mask = rng.next();
        if (iter % 4 == 0)
            mask = ~0ull;
        uint64_t bytes_per_lane = 1ull << (rng.next() % 4); // 1..8
        std::vector<Addr> lane_addrs(64);
        // Unit-stride, strided, and scattered access patterns.
        Addr base = rng.next() % 0x10000;
        uint64_t stride = (iter % 3 == 0)   ? bytes_per_lane
                          : (iter % 3 == 1) ? 64 * (rng.next() % 4 + 1)
                                            : 0;
        for (unsigned lane = 0; lane < 64; ++lane)
            lane_addrs[lane] = stride
                                   ? base + lane * stride
                                   : base + (rng.next() % 0x4000);

        // The production loop: ctz lane visit + bounded insertion.
        Addr lines[2 * 64];
        unsigned n = 0;
        for (uint64_t m = mask; m; m &= m - 1) {
            unsigned lane = unsigned(findLsb(m));
            Addr first = lane_addrs[lane] / 64;
            Addr last = (lane_addrs[lane] + bytes_per_lane - 1) / 64;
            n = cu::insertLineSorted(lines, n, first);
            if (last != first)
                n = cu::insertLineSorted(lines, n, last);
        }

        auto ref = refCoalesce(lane_addrs, mask, bytes_per_lane);
        ASSERT_EQ(n, ref.size()) << "iter " << iter;
        for (unsigned i = 0; i < n; ++i)
            EXPECT_EQ(lines[i], ref[i]) << "iter " << iter << " i " << i;
    }
}
