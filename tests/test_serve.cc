/**
 * @file
 * Tests for the multi-tenant sweep server (src/serve, common/socket):
 *  - the `last-serve-v1` protocol: request parsing (with byte-offset
 *    errors), single-line envelopes, exact payload round-trip through
 *    the escaped-string embedding;
 *  - in-flight coalescing: N concurrent identical requests cost one
 *    simulation pair, proven by the scheduler counters;
 *  - served divergence payloads are byte-identical to what the offline
 *    `last_obs diverge` path produces, cold and warm — and a warm
 *    server answers a repeat query with zero new simulations;
 *  - admission control refuses at a full queue with a structured
 *    `overloaded` error instead of queueing unbounded work;
 *  - quarantine degradation: a per-request deadline trip degrades the
 *    response (and is never retained in the store, so a retry
 *    re-simulates) without killing the daemon;
 *  - the socket front-end: ephemeral-port TCP, malformed and oversized
 *    lines answered with structured errors on a still-usable
 *    connection, concurrent real clients, clean unix-socket unlink.
 *
 * ServeCore tests run with workers=0 (submissions queue; drainOne()
 * executes inline) so every counter assertion is deterministic.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <vector>

#include "common/error.hh"
#include "common/json_in.hh"
#include "common/socket.hh"
#include "obs/divergence.hh"
#include "obs/stats_export.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "sim/bench_cache.hh"
#include "sim/experiment.hh"
#include "sim/parallel.hh"

using namespace last;

namespace
{

/** workers=0: submissions only queue; tests drain deterministically. */
serve::ServeOptions
inlineOpts()
{
    serve::ServeOptions opts;
    opts.workers = 0;
    return opts;
}

serve::ServeRequest
divergeRequest(const std::string &workload, double scale,
               uint64_t id = 1)
{
    serve::ServeRequest req;
    req.id = id;
    req.method = "diverge";
    req.workload = workload;
    req.scale = scale;
    return req;
}

/** Parse a response envelope (it must be one line of valid JSON). */
jsonin::JsonValue
parseEnvelope(const std::string &line)
{
    EXPECT_EQ(line.find('\n'), std::string::npos) << line;
    return jsonin::parseJson(line, "<envelope>");
}

std::string
field(const jsonin::JsonValue &env, const std::string &key)
{
    const jsonin::JsonValue *v = env.find(key);
    EXPECT_NE(v, nullptr) << "missing field " << key;
    return v ? v->text : "";
}

bool
boolField(const jsonin::JsonValue &env, const std::string &key)
{
    const jsonin::JsonValue *v = env.find(key);
    EXPECT_NE(v, nullptr) << "missing field " << key;
    return v && v->boolean;
}

/** The offline reference: what `last_obs diverge <w> --json` writes. */
std::string
offlineDivergenceBytes(const std::string &workload, double scale)
{
    workloads::WorkloadScale ws{scale};
    auto reports =
        obs::divergenceReports({workload}, GpuConfig{}, ws,
                               obs::DefaultDivergenceThreshold, 1);
    std::ostringstream os;
    obs::writeDivergenceJsonArray(os, reports);
    return os.str();
}

} // namespace

// --------------------------------------------------------------------
// Protocol
// --------------------------------------------------------------------

TEST(ServeProtocol, ParsesFullRequestLine)
{
    serve::ServeRequest req = serve::parseServeRequest(
        R"({"id":7,"method":"diverge","workload":"SpMV","isa":"gcn3",)"
        R"("scale":0.5,"seed":3,"lds_stride":2,"lds_pad":1,)"
        R"("threshold":0.2,"timeout_ms":100,"future_field":true})",
        "<test>");
    EXPECT_EQ(req.id, 7u);
    EXPECT_EQ(req.method, "diverge");
    EXPECT_EQ(req.workload, "SpMV");
    EXPECT_TRUE(req.hasIsa);
    EXPECT_EQ(req.isa, IsaKind::GCN3);
    EXPECT_DOUBLE_EQ(req.scale, 0.5);
    EXPECT_EQ(req.seed, 3u);
    EXPECT_EQ(req.ldsStrideWords, 2);
    EXPECT_EQ(req.ldsPadWords, 1);
    EXPECT_DOUBLE_EQ(req.threshold, 0.2);
    EXPECT_EQ(req.timeoutMs, 100u);
}

TEST(ServeProtocol, DefaultsMirrorTheOfflineCli)
{
    serve::ServeRequest req =
        serve::parseServeRequest(R"({"method":"ping"})", "<test>");
    EXPECT_EQ(req.id, 0u);
    EXPECT_FALSE(req.hasIsa);
    EXPECT_DOUBLE_EQ(req.scale, 1.0);
    EXPECT_EQ(req.seed, 0u);
    EXPECT_EQ(req.ldsStrideWords, -1);
    EXPECT_EQ(req.ldsPadWords, -1);
    EXPECT_DOUBLE_EQ(req.threshold, obs::DefaultDivergenceThreshold);
    EXPECT_EQ(req.timeoutMs, 0u);
}

TEST(ServeProtocol, RejectsMalformedLinesWithOffset)
{
    // Missing method, non-object, bad isa, trailing garbage: all must
    // throw ConfigError naming the source — never crash or half-parse.
    for (const char *bad :
         {R"({"workload":"SpMV"})", R"([1,2,3])", "not json at all",
          R"({"method":"stats","isa":"ptx"})",
          R"({"method":"ping"} trailing)", R"({"method":)", ""}) {
        EXPECT_THROW(serve::parseServeRequest(bad, "<bad>"),
                     ConfigError)
            << bad;
    }
}

TEST(ServeProtocol, EnvelopePayloadRoundTripsExactly)
{
    // Multi-line artifact bytes with quotes and backslashes must
    // survive the escaped-string embedding byte for byte.
    const std::string artifact =
        "{\n  \"x\": \"a\\\"b\\\\c\",\n  \"y\": [1, 2]\n}\n";
    std::string line = serve::payloadEnvelope(
        9, "diverge", "cache", false, "last-divergence-v1", artifact);
    jsonin::JsonValue env = parseEnvelope(line);
    EXPECT_EQ(field(env, "schema"), "last-serve-v1");
    EXPECT_EQ(field(env, "id"), "9");
    EXPECT_TRUE(boolField(env, "ok"));
    EXPECT_EQ(field(env, "served"), "cache");
    EXPECT_FALSE(boolField(env, "quarantined"));
    EXPECT_EQ(field(env, "payload_schema"), "last-divergence-v1");
    EXPECT_EQ(field(env, "payload"), artifact);
}

TEST(ServeProtocol, ErrorEnvelopeCarriesMachineReadableKind)
{
    jsonin::JsonValue env = parseEnvelope(
        serve::errorEnvelope(3, "overloaded", "queue full"));
    EXPECT_FALSE(boolField(env, "ok"));
    EXPECT_EQ(field(env, "error_kind"), "overloaded");
    EXPECT_EQ(field(env, "error"), "queue full");
}

// --------------------------------------------------------------------
// ServeCore: coalescing, reuse, byte identity
// --------------------------------------------------------------------

TEST(ServeCore, CoalescesConcurrentIdenticalRequestsIntoOneSimulation)
{
    serve::ServeCore core(inlineOpts());
    std::vector<std::string> responses(3);
    for (uint64_t id = 1; id <= 3; ++id)
        core.submit(divergeRequest("atomicred", 0.25, id),
                    [&responses, id](const std::string &r) {
                        responses[id - 1] = r;
                    });

    // Three submissions, one queue entry, two coalesced waiters.
    serve::ServeCounters c = core.counters();
    EXPECT_EQ(c.received, 3u);
    EXPECT_EQ(c.coalesced, 2u);
    EXPECT_EQ(core.pendingRequests(), 1u);

    EXPECT_TRUE(core.drainOne());
    EXPECT_FALSE(core.drainOne()); // nothing else was queued

    c = core.counters();
    EXPECT_EQ(c.served, 3u);            // every waiter got its answer
    EXPECT_EQ(c.simulatedSpecs, NumIsas); // exactly one ISA group
    EXPECT_EQ(c.cacheRowHits, 0u);
    for (const std::string &r : responses)
        ASSERT_FALSE(r.empty());

    // Identical payloads; only the echoed id differs.
    jsonin::JsonValue e1 = parseEnvelope(responses[0]);
    jsonin::JsonValue e3 = parseEnvelope(responses[2]);
    EXPECT_EQ(field(e1, "id"), "1");
    EXPECT_EQ(field(e3, "id"), "3");
    EXPECT_EQ(field(e1, "payload"), field(e3, "payload"));
    EXPECT_EQ(field(e1, "served"), "sim");
}

TEST(ServeCore, ServedDivergenceIsByteIdenticalToOfflineColdAndWarm)
{
    serve::ServeCore core(inlineOpts());
    const std::string offline = offlineDivergenceBytes("atomicred", 0.25);

    std::string cold, warm;
    core.submit(divergeRequest("atomicred", 0.25, 1),
                [&](const std::string &r) { cold = r; });
    EXPECT_TRUE(core.drainOne());
    core.submit(divergeRequest("atomicred", 0.25, 2),
                [&](const std::string &r) { warm = r; });
    EXPECT_TRUE(core.drainOne());

    jsonin::JsonValue coldEnv = parseEnvelope(cold);
    jsonin::JsonValue warmEnv = parseEnvelope(warm);

    // The acceptance bar: served payloads equal the offline artifact
    // byte for byte, and the warm answer simulated nothing.
    EXPECT_EQ(field(coldEnv, "payload"), offline);
    EXPECT_EQ(field(warmEnv, "payload"), offline);
    EXPECT_EQ(field(coldEnv, "served"), "sim");
    EXPECT_EQ(field(warmEnv, "served"), "cache");

    serve::ServeCounters c = core.counters();
    EXPECT_EQ(c.simulatedSpecs, NumIsas); // the warm query added none
    EXPECT_EQ(c.cacheRowHits, NumIsas);   // every row from the store
    EXPECT_EQ(core.storeRows(), NumIsas);
}

TEST(ServeCore, PreloadedCacheAnswersWithZeroSimulations)
{
    // Build the rows the way a bench sweep would.
    workloads::WorkloadScale ws{0.25};
    std::vector<sim::RunSpec> specs;
    for (IsaKind isa : AllIsas)
        specs.push_back({"atomicred", isa, GpuConfig{}, ws});
    sim::SweepReport sweep = sim::runSweep(specs, {1, false});
    ASSERT_TRUE(sweep.allOk());

    sim::BenchCacheFile cache;
    cache.scale = 0.25;
    for (size_t i = 0; i < specs.size(); ++i)
        cache.rows.push_back(
            {sim::specCacheKey(specs[i]), sweep.results[i]});
    // A quarantined row must NOT be retained by preload.
    sim::CachedRun poisoned;
    poisoned.key = sim::specCacheKey(
        {"pipeline", IsaKind::HSAIL, GpuConfig{}, ws});
    poisoned.result.quarantined = true;
    cache.rows.push_back(poisoned);

    serve::ServeCore core(inlineOpts());
    EXPECT_EQ(core.preload(cache), NumIsas);
    EXPECT_EQ(core.storeRows(), NumIsas);

    std::string resp;
    core.submit(divergeRequest("atomicred", 0.25),
                [&](const std::string &r) { resp = r; });
    EXPECT_TRUE(core.drainOne());

    jsonin::JsonValue env = parseEnvelope(resp);
    EXPECT_EQ(field(env, "served"), "cache");
    EXPECT_EQ(field(env, "payload"),
              offlineDivergenceBytes("atomicred", 0.25));
    EXPECT_EQ(core.counters().simulatedSpecs, 0u);
}

TEST(ServeCore, StatsPayloadMatchesOfflineExport)
{
    serve::ServeRequest req;
    req.id = 1;
    req.method = "stats";
    req.workload = "atomicred";
    req.isa = IsaKind::GCN3;
    req.hasIsa = true;
    req.scale = 0.25;

    serve::ServeCore core(inlineOpts());
    std::string resp;
    core.submit(req, [&](const std::string &r) { resp = r; });
    EXPECT_TRUE(core.drainOne());

    // Offline reference: `last_obs stats atomicred gcn3 --scale 0.25`.
    obs::ExportMeta meta;
    meta.workload = "atomicred";
    meta.isa = isaName(IsaKind::GCN3);
    meta.scale = 0.25;
    std::string offline;
    sim::runApp("atomicred", IsaKind::GCN3, GpuConfig{}, {0.25},
                [&](runtime::Runtime &rt) {
                    std::ostringstream os;
                    obs::writeStatsJson(os, rt, meta);
                    offline = os.str();
                });

    jsonin::JsonValue env = parseEnvelope(resp);
    EXPECT_EQ(field(env, "payload_schema"), "last-stats-v1");
    EXPECT_EQ(field(env, "payload"), offline);

    // The healthy stats run was kept as a bench row, so a later
    // diverge on the same spec only owes the missing ISAs.
    EXPECT_EQ(core.storeRows(), 1u);
}

TEST(ServeCore, AdmissionControlRefusesWhenQueueIsFull)
{
    serve::ServeOptions opts = inlineOpts();
    opts.queueDepth = 1;
    serve::ServeCore core(opts);

    std::string first, second, coalesced;
    core.submit(divergeRequest("atomicred", 0.25, 1),
                [&](const std::string &r) { first = r; });
    // Different key at a full queue: refused immediately.
    core.submit(divergeRequest("ArrayBW", 0.25, 2),
                [&](const std::string &r) { second = r; });
    ASSERT_FALSE(second.empty());
    jsonin::JsonValue env = parseEnvelope(second);
    EXPECT_FALSE(boolField(env, "ok"));
    EXPECT_EQ(field(env, "error_kind"), "overloaded");

    // An identical twin still coalesces: it costs no queue slot.
    core.submit(divergeRequest("atomicred", 0.25, 3),
                [&](const std::string &r) { coalesced = r; });
    EXPECT_TRUE(coalesced.empty());

    serve::ServeCounters c = core.counters();
    EXPECT_EQ(c.overloaded, 1u);
    EXPECT_EQ(c.coalesced, 1u);
    EXPECT_TRUE(core.drainOne());
    EXPECT_FALSE(first.empty());
    EXPECT_FALSE(coalesced.empty());
}

TEST(ServeCore, BadRequestsGetStructuredErrorsNotCrashes)
{
    serve::ServeCore core(inlineOpts());
    auto expectError = [&](serve::ServeRequest req,
                           const std::string &kind) {
        std::string resp;
        core.submit(req, [&](const std::string &r) { resp = r; });
        ASSERT_FALSE(resp.empty());
        jsonin::JsonValue env = parseEnvelope(resp);
        EXPECT_FALSE(boolField(env, "ok"));
        EXPECT_EQ(field(env, "error_kind"), kind);
    };

    serve::ServeRequest req;
    req.method = "explode";
    expectError(req, "bad-request"); // unknown method

    req = divergeRequest("NoSuchWorkload", 1.0);
    expectError(req, "bad-request");

    req = serve::ServeRequest{};
    req.method = "stats";
    req.workload = "atomicred";
    expectError(req, "bad-request"); // stats without an isa

    req = serve::ServeRequest{};
    req.method = "diverge";
    expectError(req, "bad-request"); // no workload

    EXPECT_EQ(core.pendingRequests(), 0u); // none of those queued
}

TEST(ServeCore, ShutdownAcksThenRefusesNewWork)
{
    serve::ServeCore core(inlineOpts());
    bool hookRan = false;
    core.onShutdown([&] { hookRan = true; });

    std::string ack;
    serve::ServeRequest req;
    req.method = "shutdown";
    core.submit(req, [&](const std::string &r) { ack = r; });
    jsonin::JsonValue env = parseEnvelope(ack);
    EXPECT_TRUE(boolField(env, "ok"));
    EXPECT_TRUE(hookRan);
    EXPECT_TRUE(core.shutdownRequested());

    std::string late;
    core.submit(divergeRequest("atomicred", 0.25),
                [&](const std::string &r) { late = r; });
    jsonin::JsonValue lateEnv = parseEnvelope(late);
    EXPECT_FALSE(boolField(lateEnv, "ok"));
    EXPECT_EQ(field(lateEnv, "error_kind"), "shutdown");
}

// --------------------------------------------------------------------
// Quarantine degradation
// --------------------------------------------------------------------

TEST(ServeQuarantine, DeadlineTripDegradesResponseAndIsNeverStored)
{
    serve::ServeOptions opts = inlineOpts();
    opts.retryFailed = false; // deterministic single attempt
    serve::ServeCore core(opts);

    serve::ServeRequest req = divergeRequest("pipeline", 1.0);
    req.timeoutMs = 1; // a full pipeline sim cannot finish in 1ms

    std::string resp;
    core.submit(req, [&](const std::string &r) { resp = r; });
    EXPECT_TRUE(core.drainOne());

    // Degraded, not dead: a well-formed payload whose reports carry
    // the failure (divergenceFromCache's failed-report shape).
    jsonin::JsonValue env = parseEnvelope(resp);
    EXPECT_TRUE(boolField(env, "ok"));
    EXPECT_TRUE(boolField(env, "quarantined"));
    std::string payload = field(env, "payload");
    EXPECT_NE(payload.find("\"failed\":true"), std::string::npos)
        << payload;

    // Nothing poisoned the store; the retry re-simulates.
    EXPECT_EQ(core.storeRows(), 0u);
    serve::ServeCounters c = core.counters();
    EXPECT_EQ(c.quarantinedSpecs, NumIsas);
    uint64_t simulatedBefore = c.simulatedSpecs;

    std::string retry;
    core.submit(req, [&](const std::string &r) { retry = r; });
    EXPECT_TRUE(core.drainOne());
    EXPECT_GT(core.counters().simulatedSpecs, simulatedBefore);
    EXPECT_EQ(core.counters().cacheRowHits, 0u);
}

TEST(ServeQuarantine, StatsDeadlineTripIsAStructuredQuarantineError)
{
    serve::ServeOptions opts = inlineOpts();
    opts.retryFailed = false;
    serve::ServeCore core(opts);

    serve::ServeRequest req;
    req.method = "stats";
    req.workload = "pipeline";
    req.isa = IsaKind::GCN3;
    req.hasIsa = true;
    req.timeoutMs = 1;

    std::string resp;
    core.submit(req, [&](const std::string &r) { resp = r; });
    EXPECT_TRUE(core.drainOne());

    jsonin::JsonValue env = parseEnvelope(resp);
    EXPECT_FALSE(boolField(env, "ok"));
    EXPECT_EQ(field(env, "error_kind"), "quarantine");
    EXPECT_EQ(core.storeRows(), 0u); // the daemon survives, store clean
}

// --------------------------------------------------------------------
// Socket front-end
// --------------------------------------------------------------------

namespace
{

/** One connected test client over loopback TCP. */
struct TestClient
{
    net::LineConn conn;

    explicit TestClient(uint16_t port)
        : conn(net::connectEndpoint(makeTcp(port)))
    {}

    static net::Endpoint
    makeTcp(uint16_t port)
    {
        net::Endpoint ep;
        ep.kind = net::Endpoint::Kind::Tcp;
        ep.port = port;
        return ep;
    }

    std::string
    roundTrip(const std::string &requestLine)
    {
        EXPECT_TRUE(conn.writeAll(requestLine + "\n"));
        std::string line;
        EXPECT_EQ(conn.readLine(line, size_t(64) << 20),
                  net::LineConn::ReadStatus::Line);
        return line;
    }
};

} // namespace

TEST(ServeSocket, TcpPingOnEphemeralPort)
{
    serve::ServeOptions opts;
    opts.workers = 1;
    serve::Server server(opts, TestClient::makeTcp(0));
    server.start();
    ASSERT_GT(server.boundPort(), 0);

    TestClient client(server.boundPort());
    jsonin::JsonValue env =
        parseEnvelope(client.roundTrip(R"({"id":5,"method":"ping"})"));
    EXPECT_TRUE(boolField(env, "ok"));
    EXPECT_EQ(field(env, "id"), "5");
    server.stop();
}

TEST(ServeSocket, MalformedAndOversizedLinesKeepTheConnectionUsable)
{
    serve::ServeOptions opts;
    opts.workers = 1;
    opts.maxLineBytes = 256;
    serve::Server server(opts, TestClient::makeTcp(0));
    server.start();

    TestClient client(server.boundPort());

    // Garbage line: structured parse error, connection stays up.
    jsonin::JsonValue bad =
        parseEnvelope(client.roundTrip("this is not json"));
    EXPECT_FALSE(boolField(bad, "ok"));
    EXPECT_EQ(field(bad, "error_kind"), "parse");

    // Oversized line: structured error after resync.
    std::string huge = R"({"method":")" + std::string(1024, 'x') +
                       R"("})";
    jsonin::JsonValue over = parseEnvelope(client.roundTrip(huge));
    EXPECT_FALSE(boolField(over, "ok"));
    EXPECT_EQ(field(over, "error_kind"), "oversized");

    // Framing survived both: a normal request still answers.
    jsonin::JsonValue ok =
        parseEnvelope(client.roundTrip(R"({"id":2,"method":"ping"})"));
    EXPECT_TRUE(boolField(ok, "ok"));
    EXPECT_EQ(field(ok, "id"), "2");
    server.stop();
}

TEST(ServeSocket, ConcurrentIdenticalClientsCostOneSimulationPair)
{
    serve::ServeOptions opts;
    opts.workers = 2;
    opts.simJobs = 1;
    serve::Server server(opts, TestClient::makeTcp(0));
    server.start();

    constexpr int N = 4;
    const std::string request =
        R"({"id":1,"method":"diverge","workload":"atomicred",)"
        R"("scale":0.25})";
    std::vector<std::string> responses(N);
    std::vector<std::thread> threads;
    threads.reserve(N);
    for (int i = 0; i < N; ++i)
        threads.emplace_back([&, i] {
            TestClient client(server.boundPort());
            responses[i] = client.roundTrip(request);
        });
    for (std::thread &t : threads)
        t.join();

    // Whether the twins coalesced or hit the warm store, the
    // ISA group was simulated exactly once.
    std::string payload0;
    for (int i = 0; i < N; ++i) {
        jsonin::JsonValue env = parseEnvelope(responses[i]);
        EXPECT_TRUE(boolField(env, "ok"));
        std::string p = field(env, "payload");
        if (i == 0)
            payload0 = p;
        else
            EXPECT_EQ(p, payload0);
    }
    serve::ServeCounters c = server.core().counters();
    EXPECT_EQ(c.simulatedSpecs, NumIsas);
    EXPECT_EQ(c.served, unsigned(N));
    server.stop();
}

TEST(ServeSocket, ShutdownRequestStopsTheServerAndUnlinksUnixSocket)
{
    char buf[] = "/tmp/last_serve_XXXXXX";
    ASSERT_NE(::mkdtemp(buf), nullptr);
    const std::string sockPath = std::string(buf) + "/serve.sock";

    net::Endpoint ep;
    ep.kind = net::Endpoint::Kind::Unix;
    ep.path = sockPath;

    serve::ServeOptions opts;
    opts.workers = 1;
    serve::Server server(opts, ep);
    server.start();

    struct stat st{};
    EXPECT_EQ(::stat(sockPath.c_str(), &st), 0); // socket file exists

    {
        net::LineConn conn(net::connectEndpoint(ep));
        EXPECT_TRUE(
            conn.writeAll(R"({"id":1,"method":"shutdown"})" "\n"));
        std::string line;
        EXPECT_EQ(conn.readLine(line, 1 << 20),
                  net::LineConn::ReadStatus::Line);
        EXPECT_TRUE(boolField(parseEnvelope(line), "ok"));
    }

    server.waitStopped();
    server.stop();
    // The clean-shutdown contract: no leaked socket file.
    EXPECT_NE(::stat(sockPath.c_str(), &st), 0);
    ::rmdir(buf);
}
