/**
 * @file
 * Tests for the sharded sweep backend (sim/shard, sim/bench_cache):
 *  - deterministic matrix splitting that keeps ISA groups together;
 *  - manifest JSON round-trip and schema validation;
 *  - cache rows reconstruct results exactly (round-trip precision);
 *  - merge is order-independent, overlap-tolerant, and idempotent,
 *    with merged artifacts byte-identical to a single-process run;
 *  - incremental reuse skips every cached spec and changes no bytes;
 *  - quarantine marker rows survive the cache and degrade divergence
 *    reports instead of vanishing, and the loader warns when it drops
 *    rows (stale version, quarantined spec) instead of staying silent.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/error.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "obs/divergence.hh"
#include "sim/bench_cache.hh"
#include "sim/shard.hh"

using namespace last;

namespace
{

std::vector<sim::RunSpec>
smallMatrix()
{
    workloads::WorkloadScale scale{0.25};
    std::vector<sim::RunSpec> specs;
    for (const char *w : {"VecAdd", "ArrayBW", "atomicred", "pipeline"})
        for (IsaKind isa : AllIsas)
            specs.push_back({w, isa, GpuConfig{}, scale});
    return specs;
}

std::string
cacheBytes(const sim::BenchCacheFile &c)
{
    std::ostringstream os;
    sim::writeBenchCache(os, c);
    return os.str();
}

std::string
divergenceBytes(const sim::BenchCacheFile &c)
{
    auto reports = sim::divergenceFromCache(c);
    std::ostringstream os;
    obs::writeDivergenceJsonArray(os, reports);
    return os.str();
}

std::string
manifestBytes(const sim::ShardManifest &m)
{
    std::ostringstream os;
    sim::writeShardManifest(os, m);
    return os.str();
}

} // namespace

TEST(ShardManifest, DeterministicSplitKeepsPairsTogether)
{
    auto specs = smallMatrix();
    auto shards = sim::makeShardManifests(specs, 3);
    ASSERT_EQ(shards.size(), 3u);

    // Every spec appears exactly once; each per-workload ISA group
    // (NumIsas consecutive specs) lands whole on one shard.
    std::vector<int> seen(specs.size(), 0);
    for (const auto &m : shards) {
        EXPECT_EQ(m.totalSpecs, specs.size());
        EXPECT_EQ(m.shardCount, 3u);
        for (size_t i = 0; i + NumIsas <= m.entries.size();
             i += NumIsas) {
            for (unsigned k = 0; k < NumIsas; ++k) {
                EXPECT_EQ(m.entries[i + k].workload,
                          m.entries[i].workload);
                EXPECT_EQ(m.entries[i + k].isa, AllIsas[k]);
            }
        }
        for (const auto &e : m.entries) {
            ASSERT_LT(e.index, specs.size());
            ++seen[e.index];
            EXPECT_EQ(e.workload, specs[e.index].workload);
            EXPECT_EQ(e.isa, specs[e.index].isa);
        }
    }
    for (size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], 1) << "spec " << i;

    // Same input, same manifests — byte for byte.
    auto again = sim::makeShardManifests(specs, 3);
    for (size_t i = 0; i < shards.size(); ++i)
        EXPECT_EQ(manifestBytes(shards[i]), manifestBytes(again[i]));
}

TEST(ShardManifest, JsonRoundTrip)
{
    auto specs = smallMatrix();
    // Exercise the 64-bit fields: seeds and knobs must not round-trip
    // through a double.
    for (auto &s : specs) {
        s.scale.seed = 0xdeadbeefcafef00dull;
        s.scale.ldsStrideWords = 33;
        s.scale.ldsPadWords = 1;
    }
    auto shards = sim::makeShardManifests(specs, 2);
    for (const auto &m : shards) {
        std::istringstream is(manifestBytes(m));
        sim::ShardManifest back = sim::readShardManifest(is);
        EXPECT_EQ(back.shardIndex, m.shardIndex);
        EXPECT_EQ(back.shardCount, m.shardCount);
        EXPECT_EQ(back.totalSpecs, m.totalSpecs);
        ASSERT_EQ(back.entries.size(), m.entries.size());
        for (size_t i = 0; i < m.entries.size(); ++i) {
            EXPECT_EQ(back.entries[i].index, m.entries[i].index);
            EXPECT_EQ(back.entries[i].workload, m.entries[i].workload);
            EXPECT_EQ(back.entries[i].isa, m.entries[i].isa);
            EXPECT_EQ(back.entries[i].scaleFactor,
                      m.entries[i].scaleFactor);
            EXPECT_EQ(back.entries[i].seed, 0xdeadbeefcafef00dull);
            EXPECT_EQ(back.entries[i].ldsStrideWords, 33);
            EXPECT_EQ(back.entries[i].ldsPadWords, 1);
        }
        // Round-tripping the parse emits identical bytes.
        EXPECT_EQ(manifestBytes(back), manifestBytes(m));
    }
}

TEST(ShardManifest, RejectsBadInput)
{
    {
        std::istringstream is("{\"schema\":\"wrong-schema\"}");
        EXPECT_THROW(sim::readShardManifest(is), std::runtime_error);
    }
    {
        std::istringstream is("{\"schema\":\"last-shard-v1\""); // cut off
        EXPECT_THROW(sim::readShardManifest(is), std::runtime_error);
    }
    {
        std::istringstream is("[1, 2, 3]");
        EXPECT_THROW(sim::readShardManifest(is), std::runtime_error);
    }
    {
        // Missing required entry fields.
        std::istringstream is(
            "{\"schema\":\"last-shard-v1\",\"shard_index\":0,"
            "\"shard_count\":1,\"total_specs\":1,"
            "\"entries\":[{\"index\":0}]}");
        EXPECT_THROW(sim::readShardManifest(is), std::runtime_error);
    }
}

TEST(BenchCache, RowRoundTripIsExact)
{
    auto specs = smallMatrix();
    auto shards = sim::makeShardManifests(specs, 1);
    auto outcome = sim::runShard(shards[0]);
    ASSERT_EQ(outcome.quarantined, 0u);

    std::string bytes = cacheBytes(outcome.cache);
    std::istringstream is(bytes);
    sim::BenchCacheFile back;
    ASSERT_TRUE(sim::readBenchCache(is, back, "test"));
    ASSERT_EQ(back.rows.size(), outcome.cache.rows.size());
    EXPECT_EQ(back.scale, 0.25);

    // Writing the parse reproduces the bytes, and the doubles made the
    // trip exactly (round-trip precision, not the old 6 digits).
    EXPECT_EQ(cacheBytes(back), bytes);
    for (const auto &row : outcome.cache.rows) {
        const sim::CachedRun *b = back.find(row.key);
        ASSERT_NE(b, nullptr);
        EXPECT_EQ(b->result.digest, row.result.digest);
        EXPECT_EQ(b->result.dynInsts, row.result.dynInsts);
        EXPECT_EQ(b->result.cycles, row.result.cycles);
        EXPECT_DOUBLE_EQ(b->result.ipc, row.result.ipc);
        EXPECT_DOUBLE_EQ(b->result.reuseMedian, row.result.reuseMedian);
        EXPECT_DOUBLE_EQ(b->result.simdUtil, row.result.simdUtil);
        EXPECT_EQ(b->result.coalescedLines, row.result.coalescedLines);
        EXPECT_EQ(b->result.busyCycles, row.result.busyCycles);
        ASSERT_EQ(b->result.launches.size(), row.result.launches.size());
    }
}

TEST(BenchCache, BackendIdentityKeepsMachineIsaRowsDistinct)
{
    // The aliasing regression this pins: the pre-PTXL key order
    // compared ISAs as "HSAIL first, anything else after" — a
    // strict-weak ordering under which a GCN3 row and a PTXL row for
    // the same spec compared EQUIVALENT. Canonical sorting became
    // insertion-order dependent (breaking shard/single-process byte
    // identity) and a merge could fold one vendor's row into the
    // other's. The order must be total: AllIsas position.
    sim::CacheKey base{"VecAdd", IsaKind::HSAIL, 7, 0x1234};
    for (unsigned i = 0; i < NumIsas; ++i) {
        for (unsigned j = 0; j < NumIsas; ++j) {
            sim::CacheKey a = base, b = base;
            a.isa = AllIsas[i];
            b.isa = AllIsas[j];
            EXPECT_EQ(sim::cacheKeyLess(a, b), i < j)
                << isaName(a.isa) << " vs " << isaName(b.isa);
            EXPECT_EQ(a == b, i == j);
        }
    }

    // Hit-count proof at the file level: NumIsas rows differing only
    // in ISA go in with distinct digests, and each key gets exactly
    // its own row back — from a canonical file whose bytes do not
    // depend on insertion order, and through a merge that keeps all
    // of them.
    auto rowFor = [&](IsaKind isa) {
        sim::CachedRun r;
        r.key = base;
        r.key.isa = isa;
        r.result.workload = base.workload;
        r.result.isa = isa;
        r.result.verified = true;
        r.result.digest = 0xD16E5700u + unsigned(isa);
        return r;
    };
    sim::BenchCacheFile fwd, rev;
    fwd.scale = rev.scale = 0.25;
    for (IsaKind isa : AllIsas)
        fwd.rows.push_back(rowFor(isa));
    for (unsigned k = NumIsas; k-- > 0;)
        rev.rows.push_back(rowFor(AllIsas[k]));
    EXPECT_EQ(cacheBytes(fwd), cacheBytes(rev));

    sim::BenchCacheFile merged = sim::mergeBenchCaches({fwd, rev});
    ASSERT_EQ(merged.rows.size(), size_t(NumIsas));
    for (IsaKind isa : AllIsas) {
        sim::CacheKey k = base;
        k.isa = isa;
        const sim::CachedRun *row = merged.find(k);
        ASSERT_NE(row, nullptr) << isaName(isa);
        EXPECT_EQ(row->result.digest, 0xD16E5700u + unsigned(isa));
        EXPECT_EQ(row->result.isa, isa);
    }
}

TEST(ShardSweep, MergeIsOrderIndependentOverlapTolerantIdempotent)
{
    auto specs = smallMatrix();

    // Ground truth: one process covering the whole matrix.
    auto single = sim::runShard(sim::makeShardManifests(specs, 1)[0]);
    const std::string want = cacheBytes(single.cache);
    const std::string wantDiv = divergenceBytes(single.cache);

    // Three shard processes (simulated in-process).
    auto manifests = sim::makeShardManifests(specs, 3);
    std::vector<sim::BenchCacheFile> parts;
    for (const auto &m : manifests)
        parts.push_back(sim::runShard(m).cache);

    // Any merge order...
    sim::BenchCacheFile merged =
        sim::mergeBenchCaches({parts[0], parts[1], parts[2]});
    EXPECT_EQ(cacheBytes(merged), want);
    EXPECT_EQ(cacheBytes(sim::mergeBenchCaches(
                  {parts[2], parts[0], parts[1]})),
              want);
    // ... overlapping shards (shard 1 delivered twice, plus the full
    // single-process cache on top) ...
    EXPECT_EQ(cacheBytes(sim::mergeBenchCaches(
                  {parts[1], single.cache, parts[0], parts[1],
                   parts[2]})),
              want);
    // ... and re-merging a merged cache are all byte-identical.
    EXPECT_EQ(cacheBytes(sim::mergeBenchCaches({merged, merged})), want);

    // The reconstructed divergence report matches the single-process
    // one byte for byte too.
    EXPECT_EQ(divergenceBytes(merged), wantDiv);
}

TEST(ShardSweep, IncrementalReuseSkipsEverythingAndChangesNoBytes)
{
    auto specs = smallMatrix();
    auto manifest = sim::makeShardManifests(specs, 1)[0];
    auto fresh = sim::runShard(manifest);
    ASSERT_EQ(fresh.simulated, specs.size());
    ASSERT_EQ(fresh.reused, 0u);

    sim::ShardRunOptions opts;
    opts.reuse = &fresh.cache;
    auto warm = sim::runShard(manifest, opts);
    EXPECT_EQ(warm.simulated, 0u);
    EXPECT_EQ(warm.reused, specs.size());
    EXPECT_EQ(cacheBytes(warm.cache), cacheBytes(fresh.cache));

    // A different seed is a different key: nothing may be served from
    // the seed-0 cache.
    auto seeded = specs;
    for (auto &s : seeded)
        s.scale.seed = 7;
    auto seededManifest = sim::makeShardManifests(seeded, 1)[0];
    std::vector<size_t> toReuse;
    for (const auto &e : seededManifest.entries) {
        const sim::CachedRun *hit = fresh.cache.find(
            sim::specCacheKey(sim::specFromEntry(e)));
        if (hit)
            toReuse.push_back(e.index);
    }
    EXPECT_TRUE(toReuse.empty());
}

TEST(ShardSweep, QuarantineRowsSurviveAndDegradeReports)
{
    // An unknown workload throws inside the sweep; runShard must
    // quarantine it, emit a marker row that survives the cache
    // round-trip, and the divergence report built from those rows must
    // degrade to failed instead of inventing numbers.
    workloads::WorkloadScale scale{0.25};
    std::vector<sim::RunSpec> specs;
    for (const char *w : {"VecAdd", "NoSuchWorkload"})
        for (IsaKind isa : AllIsas)
            specs.push_back({w, isa, GpuConfig{}, scale});
    auto outcome = sim::runShard(sim::makeShardManifests(specs, 1)[0]);
    EXPECT_EQ(outcome.quarantined, NumIsas);
    EXPECT_EQ(outcome.sweep.quarantined.size(), NumIsas);

    std::string bytes = cacheBytes(outcome.cache);
    std::istringstream is(bytes);
    sim::BenchCacheFile back;
    ASSERT_TRUE(sim::readBenchCache(is, back, "test"));
    size_t quarantined = 0;
    for (const auto &row : back.rows) {
        if (!row.result.quarantined)
            continue;
        ++quarantined;
        EXPECT_EQ(row.key.workload, "NoSuchWorkload");
        EXPECT_FALSE(row.result.errorKind.empty());
        EXPECT_FALSE(row.result.errorMessage.empty());
    }
    EXPECT_EQ(quarantined, NumIsas);
    EXPECT_EQ(cacheBytes(back), bytes);

    auto reports = sim::divergenceFromCache(back);
    ASSERT_EQ(reports.size(), 2u); // VecAdd + NoSuchWorkload
    bool sawFailed = false, sawOk = false;
    for (const auto &r : reports) {
        if (r.workload == "NoSuchWorkload") {
            EXPECT_TRUE(r.failed);
            EXPECT_TRUE(r.entries.empty());
            sawFailed = true;
        } else {
            EXPECT_FALSE(r.failed);
            sawOk = true;
        }
    }
    EXPECT_TRUE(sawFailed);
    EXPECT_TRUE(sawOk);

    // A quarantined row never satisfies incremental reuse: the spec is
    // re-attempted (and fails again here, staying quarantined).
    sim::ShardRunOptions opts;
    opts.reuse = &back;
    opts.retryFailed = false;
    auto retry = sim::runShard(sim::makeShardManifests(specs, 1)[0], opts);
    EXPECT_EQ(retry.reused, NumIsas);    // the healthy VecAdd group
    EXPECT_EQ(retry.simulated, NumIsas); // the poisoned group re-run
}

TEST(ShardSweep, MissingHalfDegradesToFailedReport)
{
    workloads::WorkloadScale scale{0.25};
    std::vector<sim::RunSpec> specs = {
        {"VecAdd", IsaKind::HSAIL, GpuConfig{}, scale},
    };
    auto outcome = sim::runShard(sim::makeShardManifests(specs, 1)[0]);
    auto reports = sim::divergenceFromCache(outcome.cache);
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_TRUE(reports[0].failed);
    EXPECT_NE(reports[0].error.find("missing GCN3"), std::string::npos);
}

TEST(BenchCache, LoaderWarnsOnStaleVersionAndQuarantineDrops)
{
    std::vector<std::string> warnings;
    setLogHook([&](const char *level, const std::string &msg) {
        if (std::string(level) == "warn")
            warnings.push_back(msg);
    });

    // Stale version header: loud, and the cache counts as absent.
    {
        std::istringstream is("last-bench-cache v4 scale=1\n"
                              "VecAdd,HSAIL,1,123\n");
        sim::BenchCacheFile out;
        EXPECT_FALSE(sim::readBenchCache(is, out, "stale.csv"));
        ASSERT_EQ(warnings.size(), 1u);
        EXPECT_NE(warnings[0].find("stale.csv"), std::string::npos);
        EXPECT_NE(warnings[0].find("version 4"), std::string::npos);
    }

    // Damaged row: loud, parsed rows discarded.
    warnings.clear();
    {
        std::istringstream is("last-bench-cache v6 scale=1\n"
                              "VecAdd,HSAIL,truncated\n"
                              "eof,1\n");
        sim::BenchCacheFile out;
        EXPECT_FALSE(sim::readBenchCache(is, out, "damaged.csv"));
        EXPECT_TRUE(out.rows.empty());
        ASSERT_EQ(warnings.size(), 1u);
        EXPECT_NE(warnings[0].find("damaged.csv"), std::string::npos);
    }

    // Quarantine rows: returned by the loader (the merge step needs
    // them), dropped loudly by the figure-style consumer.
    warnings.clear();
    {
        std::istringstream is(
            "last-bench-cache v6 scale=1\n"
            "quarantine,VecAdd,GCN3,0,42,DeadlockError,wedged, with "
            "commas\n"
            "eof,1\n");
        sim::BenchCacheFile out;
        ASSERT_TRUE(sim::readBenchCache(is, out, "quar.csv"));
        ASSERT_EQ(out.rows.size(), 1u);
        EXPECT_TRUE(out.rows[0].result.quarantined);
        EXPECT_EQ(out.rows[0].result.errorKind, "DeadlockError");
        EXPECT_EQ(out.rows[0].result.errorMessage, "wedged, with commas");
        EXPECT_TRUE(warnings.empty());

        EXPECT_EQ(sim::dropQuarantinedRows(out, "quar.csv"), 1u);
        EXPECT_TRUE(out.rows.empty());
        ASSERT_EQ(warnings.size(), 1u);
        EXPECT_NE(warnings[0].find("quarantined"), std::string::npos);
        EXPECT_NE(warnings[0].find("VecAdd"), std::string::npos);
    }

    setLogHook(nullptr);
}

// ---------------------------------------------------------------------
// Torn-input fuzz: a crashed (or SIGKILLed) writer can leave a loader
// facing a file cut at ANY byte, or with flipped bytes from a bad disk.
// Every such input must fail loudly — a SimError naming the offending
// source and byte offset — never a crash, a hang, or a silent partial
// load that would poison a resumed campaign.
// ---------------------------------------------------------------------

namespace
{

/** True when `msg` names the source and carries a byte offset. */
bool
loudFailure(const std::string &msg, const std::string &source)
{
    return msg.find(source) != std::string::npos &&
           msg.find("at byte") != std::string::npos;
}

} // namespace

TEST(TornInputFuzz, ManifestTruncatedAtEveryByteFailsLoudly)
{
    auto specs = smallMatrix();
    for (auto &s : specs)
        s.scale.seed = 0x0123456789abcdefull;
    const std::string full =
        manifestBytes(sim::makeShardManifests(specs, 2)[1]);

    // The canonical reference parse of the complete bytes.
    std::istringstream whole(full);
    const std::string want =
        manifestBytes(sim::readShardManifest(whole, "fuzz.json"));

    for (size_t len = 0; len < full.size(); ++len) {
        std::istringstream is(full.substr(0, len));
        try {
            sim::ShardManifest m = sim::readShardManifest(is, "fuzz.json");
            // A prefix may parse only when it is still the complete
            // document (e.g. the trailing newline cut off) — never a
            // partial one.
            EXPECT_EQ(manifestBytes(m), want) << "prefix " << len;
        } catch (const SimError &e) {
            EXPECT_TRUE(loudFailure(e.what(), "fuzz.json"))
                << "prefix " << len << ": " << e.what();
        } catch (const std::exception &e) {
            ADD_FAILURE() << "prefix " << len
                          << " escaped with a non-SimError: " << e.what();
        }
    }
}

TEST(TornInputFuzz, ManifestGarbageMutationsNeverCrash)
{
    auto specs = smallMatrix();
    const std::string full =
        manifestBytes(sim::makeShardManifests(specs, 1)[0]);

    Rng rng(42);
    for (int iter = 0; iter < 300; ++iter) {
        std::string bytes = full;
        size_t flips = 1 + rng.nextBounded(3);
        for (size_t f = 0; f < flips; ++f)
            bytes[rng.nextBounded(bytes.size())] = char(rng.nextBounded(256));
        std::istringstream is(bytes);
        try {
            sim::ShardManifest m = sim::readShardManifest(is, "mut.json");
            // A benign flip (e.g. a digit in a seed) may still parse;
            // the result must at least re-serialize without incident.
            (void)manifestBytes(m);
        } catch (const SimError &e) {
            EXPECT_NE(std::string(e.what()).find("mut.json"),
                      std::string::npos)
                << "iter " << iter << ": " << e.what();
        } catch (const std::exception &e) {
            ADD_FAILURE() << "iter " << iter
                          << " escaped with a non-SimError: " << e.what();
        }
    }
}

TEST(TornInputFuzz, CacheTruncatedAtEveryByteIsRejected)
{
    // A real two-row cache (one ISA pair), cut at every byte: the
    // strict loader must throw (the eof trailer makes every proper
    // prefix detectably incomplete — including cuts at exact row
    // boundaries, the old silent-partial-load hole), and the tolerant
    // loader must warn once and report a miss, never a partial cache.
    workloads::WorkloadScale scale{0.25};
    std::vector<sim::RunSpec> specs = {
        {"VecAdd", IsaKind::HSAIL, GpuConfig{}, scale},
        {"VecAdd", IsaKind::GCN3, GpuConfig{}, scale},
    };
    auto outcome = sim::runShard(sim::makeShardManifests(specs, 1)[0]);
    ASSERT_EQ(outcome.quarantined, 0u);
    const std::string full = cacheBytes(outcome.cache);

    size_t warnings = 0;
    setLogHook([&](const char *level, const std::string &) {
        warnings += std::string(level) == "warn";
    });

    for (size_t len = 0; len < full.size(); ++len) {
        const std::string prefix = full.substr(0, len);
        {
            std::istringstream is(prefix);
            sim::BenchCacheFile out;
            try {
                sim::readBenchCacheStrict(is, out, "trunc.csv");
                ADD_FAILURE() << "prefix " << len << " parsed silently";
            } catch (const SimError &e) {
                EXPECT_TRUE(loudFailure(e.what(), "trunc.csv"))
                    << "prefix " << len << ": " << e.what();
            } catch (const std::exception &e) {
                ADD_FAILURE() << "prefix " << len
                              << " escaped with a non-SimError: "
                              << e.what();
            }
        }
        {
            std::istringstream is(prefix);
            sim::BenchCacheFile out;
            EXPECT_FALSE(sim::readBenchCache(is, out, "trunc.csv"))
                << "prefix " << len;
            EXPECT_TRUE(out.rows.empty()) << "prefix " << len;
        }
    }
    setLogHook(nullptr);
    // Every non-empty prefix warned exactly once; the empty file is a
    // quiet cache miss (a never-written cache is not an error).
    EXPECT_EQ(warnings, full.size() - 1);

    // Sanity: the untruncated bytes still load, both ways.
    std::istringstream is(full);
    sim::BenchCacheFile back;
    sim::readBenchCacheStrict(is, back, "full.csv");
    EXPECT_EQ(cacheBytes(back), full);
}

TEST(TornInputFuzz, CacheStructuralDamageIsRejected)
{
    struct Case {
        const char *label;
        const char *text;
        const char *needle; // expected substring of the error
    };
    const Case cases[] = {
        {"duplicate row",
         "last-bench-cache v6 scale=1\n"
         "quarantine,VecAdd,GCN3,0,42,DeadlockError,boom\n"
         "quarantine,VecAdd,GCN3,0,42,DeadlockError,boom\n"
         "eof,2\n",
         "duplicate"},
        {"trailer count mismatch",
         "last-bench-cache v6 scale=1\n"
         "quarantine,VecAdd,GCN3,0,42,DeadlockError,boom\n"
         "eof,3\n",
         "eof"},
        {"missing trailer",
         "last-bench-cache v6 scale=1\n"
         "quarantine,VecAdd,GCN3,0,42,DeadlockError,boom\n",
         "eof"},
        {"bytes after trailer",
         "last-bench-cache v6 scale=1\n"
         "eof,0\n"
         "quarantine,VecAdd,GCN3,0,42,DeadlockError,late\n",
         "eof"},
        {"garbage numeric field",
         "last-bench-cache v6 scale=1\n"
         "quarantine,VecAdd,GCN3,zz,42,DeadlockError,boom\n"
         "eof,1\n",
         "u64"},
        {"negative count",
         "last-bench-cache v6 scale=1\n"
         "quarantine,VecAdd,GCN3,-1,42,DeadlockError,boom\n"
         "eof,1\n",
         "u64"},
        {"unknown isa tag",
         "last-bench-cache v6 scale=1\n"
         "quarantine,VecAdd,AVX512,0,42,DeadlockError,boom\n"
         "eof,1\n",
         "ISA"},
        {"blank line",
         "last-bench-cache v6 scale=1\n"
         "\n"
         "eof,0\n",
         "blank"},
    };
    for (const Case &c : cases) {
        std::istringstream is(c.text);
        sim::BenchCacheFile out;
        try {
            sim::readBenchCacheStrict(is, out, "damage.csv");
            ADD_FAILURE() << c.label << " parsed silently";
        } catch (const SimError &e) {
            const std::string what = e.what();
            EXPECT_TRUE(loudFailure(what, "damage.csv"))
                << c.label << ": " << what;
            EXPECT_NE(what.find(c.needle), std::string::npos)
                << c.label << ": " << what;
        } catch (const std::exception &e) {
            ADD_FAILURE() << c.label
                          << " escaped with a non-SimError: " << e.what();
        }
    }
}

TEST(TornInputFuzz, CacheGarbageMutationsNeverCrash)
{
    workloads::WorkloadScale scale{0.25};
    std::vector<sim::RunSpec> specs = {
        {"VecAdd", IsaKind::HSAIL, GpuConfig{}, scale},
        {"VecAdd", IsaKind::GCN3, GpuConfig{}, scale},
    };
    auto outcome = sim::runShard(sim::makeShardManifests(specs, 1)[0]);
    const std::string full = cacheBytes(outcome.cache);

    setLogHook([](const char *, const std::string &) {});
    Rng rng(7);
    for (int iter = 0; iter < 300; ++iter) {
        std::string bytes = full;
        size_t flips = 1 + rng.nextBounded(4);
        for (size_t f = 0; f < flips; ++f)
            bytes[rng.nextBounded(bytes.size())] = char(rng.nextBounded(256));
        std::istringstream is(bytes);
        sim::BenchCacheFile out;
        try {
            sim::readBenchCacheStrict(is, out, "mut.csv");
            // A benign flip (inside an error message, say) may parse.
        } catch (const SimError &e) {
            EXPECT_NE(std::string(e.what()).find("mut.csv"),
                      std::string::npos)
                << "iter " << iter << ": " << e.what();
        } catch (const std::exception &e) {
            ADD_FAILURE() << "iter " << iter
                          << " escaped with a non-SimError: " << e.what();
        }
    }
    setLogHook(nullptr);
}

TEST(BenchCache, MergeRefusesMixedScalesAndFlagsConflicts)
{
    sim::BenchCacheFile a, b;
    a.scale = 1.0;
    b.scale = 0.5;
    EXPECT_THROW(sim::mergeBenchCaches({a, b}), ConfigError);

    // Conflicting duplicate rows (same key, different stats) warn and
    // keep the first occurrence.
    std::vector<std::string> warnings;
    setLogHook([&](const char *level, const std::string &msg) {
        if (std::string(level) == "warn")
            warnings.push_back(msg);
    });
    sim::BenchCacheFile c, d;
    c.scale = d.scale = 1.0;
    sim::CachedRun row;
    row.key = {"VecAdd", IsaKind::HSAIL, 0, 42};
    row.result.workload = "VecAdd";
    row.result.isa = IsaKind::HSAIL;
    row.result.verified = true;
    row.result.dynInsts = 100;
    c.rows.push_back(row);
    row.result.dynInsts = 999;
    d.rows.push_back(row);
    auto merged = sim::mergeBenchCaches({c, d});
    ASSERT_EQ(merged.rows.size(), 1u);
    EXPECT_EQ(merged.rows[0].result.dynInsts, 100u);
    ASSERT_EQ(warnings.size(), 1u);
    EXPECT_NE(warnings[0].find("conflicting duplicate"),
              std::string::npos);
    setLogHook(nullptr);
}
