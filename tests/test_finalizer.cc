/** @file Finalizer tests: expansions, ABI, scalarization, waitcnt. */

#include <gtest/gtest.h>

#include "finalizer/abi.hh"
#include "finalizer/finalizer.hh"
#include "finalizer/regalloc.hh"
#include "finalizer/uniformity.hh"
#include "gcn3/inst.hh"
#include "helpers.hh"

using namespace last;
using namespace last::hsail;
using last::finalizer::FinalizeStats;
using last::finalizer::finalize;

namespace
{

std::vector<std::string>
mnemonics(const arch::KernelCode &code)
{
    std::vector<std::string> out;
    for (size_t i = 0; i < code.numInsts(); ++i)
        out.push_back(code.inst(i).mnemonic());
    return out;
}

unsigned
count(const std::vector<std::string> &ms, const std::string &m)
{
    unsigned n = 0;
    for (const auto &s : ms)
        if (s == m)
            ++n;
    return n;
}

bool
containsSeq(const std::vector<std::string> &ms,
            const std::vector<std::string> &seq)
{
    for (size_t i = 0; i + seq.size() <= ms.size(); ++i) {
        bool ok = true;
        for (size_t j = 0; j < seq.size(); ++j)
            ok = ok && ms[i + j] == seq[j];
        if (ok)
            return true;
    }
    return false;
}

} // namespace

TEST(FinalizerAbi, Table1WorkitemAbsIdExpansion)
{
    KernelBuilder kb("t1");
    Val gid = kb.workitemAbsId();
    kb.stGlobal(gid, kb.immU64(0x1000));
    auto il = kb.build();
    auto code = finalize(il, GpuConfig{});
    auto ms = mnemonics(*code);
    // The paper's five-instruction sequence (the waitcnt is inserted
    // automatically before the first use of the loaded value).
    EXPECT_TRUE(containsSeq(
        ms, {"s_load_dword", "s_waitcnt", "s_bfe_u32", "s_mul_i32",
             "v_add_u32"}))
        << code->disassemble();
}

TEST(FinalizerAbi, Table2KernargExpansion)
{
    KernelBuilder kb("t2");
    kb.setKernargBytes(8);
    Val p = kb.ldKernarg(DataType::U64, 0);
    Val v = kb.ldGlobal(DataType::U32, p);
    kb.stGlobal(v, p, 64);
    auto il = kb.build();
    auto code = finalize(il, GpuConfig{});
    auto ms = mnemonics(*code);
    // Kernarg comes through s[6:7]; the flat address needs the
    // scalar base moved into vector registers (two v_movs).
    EXPECT_GE(count(ms, "s_load_dwordx2"), 1u) << code->disassemble();
    EXPECT_TRUE(containsSeq(ms, {"v_mov_b32", "v_mov_b32",
                                 "flat_load_dword"}))
        << code->disassemble();
}

TEST(FinalizerAbi, Table3DivideExpansion)
{
    KernelBuilder kb("t3");
    Val a = kb.immF64(2.0);
    Val b = kb.immF64(3.0);
    Val q = kb.div(a, b);
    kb.stGlobal(q, kb.immU64(0x1000));
    auto il = kb.build();
    FinalizeStats st;
    auto code = finalize(il, GpuConfig{}, &st);
    auto ms = mnemonics(*code);
    EXPECT_EQ(count(ms, "v_div_scale_f64"), 2u);
    EXPECT_EQ(count(ms, "v_rcp_f64"), 1u);
    EXPECT_GE(count(ms, "v_fma_f64"), 5u);
    EXPECT_EQ(count(ms, "v_div_fmas_f64"), 1u);
    EXPECT_EQ(count(ms, "v_div_fixup_f64"), 1u);
    // The expansion is an order of magnitude over the single IL div.
    EXPECT_GE(code->numInsts(), il.code->numInsts() + 10);
}

TEST(FinalizerAbi, F32DivideExpansion)
{
    KernelBuilder kb("t3f");
    Val q = kb.div(kb.immF32(1.0f), kb.immF32(7.0f));
    kb.stGlobal(q, kb.immU64(0x1000));
    auto il = kb.build();
    auto code = finalize(il, GpuConfig{});
    auto ms = mnemonics(*code);
    EXPECT_EQ(count(ms, "v_div_scale_f32"), 2u);
    EXPECT_EQ(count(ms, "v_div_fixup_f32"), 1u);
}

TEST(FinalizerAbi, IntegerDivisionRejected)
{
    KernelBuilder kb("idiv");
    Val q = kb.div(kb.immU32(10), kb.immU32(3));
    kb.stGlobal(q, kb.immU64(0x1000));
    auto il = kb.build();
    EXPECT_THROW(finalize(il, GpuConfig{}), std::runtime_error);
}

TEST(FinalizerScalar, UniformLoopUsesScalarBranch)
{
    KernelBuilder kb("uloop");
    Val i = kb.immU32(0);
    Val one = kb.immU32(1);
    Val acc = kb.cvt(DataType::F32, kb.workitemAbsId());
    kb.doBegin();
    kb.emitAluTo(Opcode::Add, acc, acc, kb.immF32(1.0f));
    kb.emitAluTo(Opcode::Add, i, i, one);
    kb.doEnd(kb.cmp(CmpOp::Lt, i, kb.immU32(10)));
    kb.stGlobal(acc, kb.immU64(0x1000));
    auto il = kb.build();
    FinalizeStats st;
    auto code = finalize(il, GpuConfig{}, &st);
    auto ms = mnemonics(*code);
    EXPECT_GE(count(ms, "s_cbranch_scc1"), 1u) << code->disassemble();
    EXPECT_EQ(count(ms, "s_and_saveexec_b64"), 0u);
    EXPECT_EQ(count(ms, "s_mov_b64"), 0u); // no exec save needed
    EXPECT_GE(count(ms, "s_add_u32"), 1u); // scalar loop counter
    EXPECT_GT(st.scalarInsts, 0u);
}

TEST(FinalizerScalar, DivergentIfUsesExecMask)
{
    KernelBuilder kb("divif");
    Val gid = kb.workitemAbsId();
    Val r = kb.immF32(0.0f);
    Val c = kb.cmp(CmpOp::Lt, gid, kb.immU32(10));
    kb.ifBegin(c);
    kb.emitAluTo(Opcode::Add, r, r, kb.immF32(1.0f));
    kb.ifEnd();
    kb.stGlobal(r, kb.immU64(0x1000));
    auto il = kb.build();
    auto code = finalize(il, GpuConfig{});
    auto ms = mnemonics(*code);
    EXPECT_EQ(count(ms, "s_and_saveexec_b64"), 1u)
        << code->disassemble();
    EXPECT_GE(count(ms, "s_cbranch_execz"), 1u); // bypass arc
    EXPECT_GE(count(ms, "s_mov_b64"), 1u);       // reconverge restore
}

TEST(FinalizerScalar, DivergentIfElseUsesXor)
{
    KernelBuilder kb("divife");
    Val gid = kb.workitemAbsId();
    Val r = kb.immF32(0.0f);
    Val c = kb.cmp(CmpOp::Lt, gid, kb.immU32(10));
    kb.ifBegin(c);
    kb.emitAluTo(Opcode::Add, r, r, kb.immF32(1.0f));
    kb.ifElse();
    kb.emitAluTo(Opcode::Add, r, r, kb.immF32(2.0f));
    kb.ifEnd();
    kb.stGlobal(r, kb.immU64(0x1000));
    auto il = kb.build();
    auto code = finalize(il, GpuConfig{});
    auto ms = mnemonics(*code);
    EXPECT_EQ(count(ms, "s_xor_b64"), 1u) << code->disassemble();
}

TEST(FinalizerScalar, KernargStaysInSgprs)
{
    KernelBuilder kb("ka");
    kb.setKernargBytes(12);
    Val n = kb.ldKernarg(DataType::U32, 8);
    Val doubled = kb.add(n, n);
    Val p = kb.ldKernarg(DataType::U64, 0);
    kb.stGlobal(doubled, p);
    auto il = kb.build();
    auto uni = finalizer::analyzeUniformity(il);
    EXPECT_TRUE(uni.isResident(n.reg));
    EXPECT_TRUE(uni.isResident(doubled.reg));
    EXPECT_TRUE(uni.isResident(p.reg));
}

TEST(FinalizerScalar, DivergentValuesStayVector)
{
    KernelBuilder kb("dv");
    Val gid = kb.workitemAbsId();
    Val x = kb.add(gid, kb.immU32(1));
    Val u = kb.add(kb.immU32(2), kb.immU32(3));
    kb.stGlobal(kb.add(x, u), kb.immU64(0x1000));
    auto il = kb.build();
    auto uni = finalizer::analyzeUniformity(il);
    EXPECT_FALSE(uni.isUniform(gid.reg));
    EXPECT_FALSE(uni.isUniform(x.reg));
    EXPECT_TRUE(uni.isUniform(u.reg));
    EXPECT_TRUE(uni.isResident(u.reg));
}

TEST(FinalizerScalar, WritesInDivergentRegionsDemote)
{
    KernelBuilder kb("demote");
    Val gid = kb.workitemAbsId();
    Val u = kb.immU32(5); // starts uniform
    Val c = kb.cmp(CmpOp::Lt, gid, kb.immU32(10));
    kb.ifBegin(c);
    kb.emitAluTo(Opcode::Add, u, u, kb.immU32(1));
    kb.ifEnd();
    kb.stGlobal(u, kb.immU64(0x1000));
    auto il = kb.build();
    auto uni = finalizer::analyzeUniformity(il);
    EXPECT_FALSE(uni.isUniform(u.reg));
}

TEST(FinalizerDeps, WaitcntBeforeFirstUse)
{
    KernelBuilder kb("wc");
    kb.setKernargBytes(8);
    Val p = kb.ldKernarg(DataType::U64, 0);
    Val v = kb.ldGlobal(DataType::F32, p);
    Val w = kb.add(v, v);
    kb.stGlobal(w, p, 4);
    auto il = kb.build();
    FinalizeStats st;
    auto code = finalize(il, GpuConfig{}, &st);
    EXPECT_GT(st.waitcntInserted, 0u);
    // Scan: between every flat_load and the first read of its dest
    // there must be an s_waitcnt with vmcnt(0).
    bool load_seen = false, wait_before_use = false;
    for (size_t i = 0; i < code->numInsts(); ++i) {
        const auto &inst = code->inst(i);
        if (inst.mnemonic() == "flat_load_dword")
            load_seen = true;
        else if (load_seen && inst.is(arch::IsWaitcnt)) {
            wait_before_use = true;
            break;
        } else if (load_seen && inst.mnemonic() == "v_add_f32") {
            break; // consumed without waiting: failure
        }
    }
    EXPECT_TRUE(load_seen);
    EXPECT_TRUE(wait_before_use) << code->disassemble();
}

TEST(FinalizerDeps, EndpgmDrainsStores)
{
    KernelBuilder kb("drain");
    kb.stGlobal(kb.immU32(1), kb.immU64(0x1000));
    auto il = kb.build();
    auto code = finalize(il, GpuConfig{});
    auto ms = mnemonics(*code);
    // Last two instructions: waitcnt then endpgm.
    ASSERT_GE(ms.size(), 2u);
    EXPECT_EQ(ms[ms.size() - 1], "s_endpgm");
    EXPECT_EQ(ms[ms.size() - 2], "s_waitcnt");
}

TEST(FinalizerDeps, NopAfterVccProducerBeforeScalarRead)
{
    KernelBuilder kb("nop");
    Val gid = kb.workitemAbsId();
    Val c = kb.cmp(CmpOp::Lt, gid, kb.immU32(7));
    kb.ifBegin(c);
    kb.stGlobal(kb.immU32(1), kb.immU64(0x1000));
    kb.ifEnd();
    auto il = kb.build();
    FinalizeStats st;
    auto code = finalize(il, GpuConfig{}, &st);
    auto ms = mnemonics(*code);
    // v_cmp writes vcc; s_and_saveexec reads it the next slot: a
    // deterministic-latency bubble must be inserted.
    EXPECT_TRUE(containsSeq(ms, {"v_cmp_lt_u32", "s_nop",
                                 "s_and_saveexec_b64"}))
        << code->disassemble();
    EXPECT_GT(st.nopsInserted, 0u);
}

TEST(FinalizerDeps, BarrierWaitsEverything)
{
    KernelBuilder kb("bar");
    kb.setLdsBytesPerWg(256);
    Val lid = kb.workitemId();
    kb.stGroup(lid, kb.mul(lid, kb.immU32(4)));
    kb.barrier();
    Val v = kb.ldGroup(DataType::U32, kb.mul(lid, kb.immU32(4)));
    kb.stGlobal(v, kb.immU64(0x2000));
    auto il = kb.build();
    auto code = finalize(il, GpuConfig{});
    auto ms = mnemonics(*code);
    bool ok = false;
    for (size_t i = 0; i + 1 < ms.size(); ++i)
        ok = ok || (ms[i] == "s_waitcnt" && ms[i + 1] == "s_barrier");
    EXPECT_TRUE(ok) << code->disassemble();
}

TEST(FinalizerCode, ExpansionRatioInPaperRange)
{
    // Across random kernels the GCN3 dynamic expansion comes mostly
    // from static expansion; check the static ratio is > 1.
    for (uint64_t seed : {1, 2, 3, 4, 5}) {
        auto il = last::test::randomKernel(seed);
        finalizer::compactIlRegisters(il);
        auto code = finalize(il, GpuConfig{});
        EXPECT_GT(code->numInsts(), il.code->numInsts())
            << "seed " << seed;
        EXPECT_LT(code->numInsts(), il.code->numInsts() * 6)
            << "seed " << seed;
    }
}

TEST(FinalizerCode, FootprintUsesVariableEncoding)
{
    auto il = last::test::randomKernel(9);
    finalizer::compactIlRegisters(il);
    auto code = finalize(il, GpuConfig{});
    uint64_t bytes = 0;
    bool saw4 = false, saw8 = false;
    for (size_t i = 0; i < code->numInsts(); ++i) {
        unsigned s = code->inst(i).sizeBytes();
        bytes += s;
        saw4 = saw4 || s == 4;
        saw8 = saw8 || s >= 8;
    }
    EXPECT_EQ(bytes, code->codeBytes());
    EXPECT_TRUE(saw4);
    EXPECT_TRUE(saw8);
}

TEST(FinalizerCode, ResourceMetadataPlausible)
{
    auto il = last::test::randomKernel(11);
    finalizer::compactIlRegisters(il);
    FinalizeStats st;
    GpuConfig cfg;
    auto code = finalize(il, cfg, &st);
    EXPECT_LE(code->vregsUsed, cfg.maxVgprsPerWfGcn3);
    EXPECT_LE(code->sregsUsed, cfg.maxSgprsPerWfGcn3);
    EXPECT_EQ(st.vgprsUsed, code->vregsUsed);
    // Every emitted vector register must be within the declared count.
    for (size_t i = 0; i < code->numInsts(); ++i)
        for (const auto &op : code->inst(i).regOps())
            if (op.cls == arch::RegClass::Vector)
                EXPECT_LT(op.idx + op.width - 1, code->vregsUsed);
}

TEST(RegAlloc, CompactionShrinksAndPreservesSemantics)
{
    auto il = last::test::randomKernel(21);
    unsigned before = il.code->vregsUsed;
    // Execute pre-compaction.
    last::test::MiniWf wf1(*il.code);
    wf1.st.kernargBase = 0x100;
    wf1.mem.write<uint64_t>(0x100, 0x10000);
    wf1.mem.write<uint64_t>(0x108, 0x20000);
    for (unsigned i = 0; i < 64; ++i)
        wf1.mem.write<uint32_t>(0x10000 + 4 * i, i * 977 + 3);
    wf1.run();

    finalizer::compactIlRegisters(il);
    EXPECT_LE(il.code->vregsUsed, before);
    for (size_t i = 0; i < il.code->numInsts(); ++i)
        for (const auto &op : il.code->inst(i).regOps())
            EXPECT_LT(op.idx + op.width - 1, il.code->vregsUsed);

    last::test::MiniWf wf2(*il.code);
    wf2.st.kernargBase = 0x100;
    wf2.mem.write<uint64_t>(0x100, 0x10000);
    wf2.mem.write<uint64_t>(0x108, 0x20000);
    for (unsigned i = 0; i < 64; ++i)
        wf2.mem.write<uint32_t>(0x10000 + 4 * i, i * 977 + 3);
    wf2.run();

    for (unsigned lane = 0; lane < 64; ++lane)
        EXPECT_EQ(wf1.mem.read<uint32_t>(0x20000 + 4 * lane),
                  wf2.mem.read<uint32_t>(0x20000 + 4 * lane))
            << "lane " << lane;
}
