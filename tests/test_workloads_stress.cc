/**
 * @file
 * Differential tests for the stress workloads beyond Table 5
 * (atomicred, ldsswizzle, bfsgraph, pipeline). Per workload x scale x
 * seed they pin down:
 *  - functional cross-ISA agreement at all three abstraction levels
 *    (HSAIL, GCN3, PTXL — runBoth / runApp / checkIsaAgreement);
 *  - the golden DIRECTION of every divergence metric against the
 *    per-workload expectation table (obs::expectedDivergence) — e.g.
 *    bfsgraph must diverge on IB flushes well past the threshold while
 *    ldsswizzle diverges on bank conflicts with simdUtil similar;
 *  - the golden N×N direction signatures of the cross-vendor matrix:
 *    which cells of the triangle diverge, and which side measures
 *    more, for the machine-shape stats (scalar pipe, encoding size,
 *    I-cache pressure, VRF banking) on every stress workload;
 *  - determinism across LAST_JOBS settings and artifact-cache on/off;
 *  - the artifact-cache key fix: ldsswizzle's stride/padding knobs are
 *    part of the key, so parameter variants never alias;
 *  - the bfsgraph reconvergence-stack property: the HSAIL RS-depth
 *    histogram is non-degenerate (nested divergence actually nests)
 *    while both machine ISAs retire the identical lane-visible results
 *    with zero hazard violations and never touch the RS.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "finalizer/backend.hh"
#include "finalizer/finalizer.hh"
#include "finalizer/regalloc.hh"
#include "hsail/builder.hh"
#include "obs/divergence.hh"
#include "sim/artifact_cache.hh"
#include "sim/experiment.hh"
#include "sim/parallel.hh"
#include "workloads/workload.hh"

using namespace last;

namespace
{

const std::vector<std::string> &
stressNames()
{
    static const std::vector<std::string> names =
        workloads::stressWorkloadNames();
    return names;
}

/** The matrix every stress assertion runs over. Seed 0 selects each
 *  workload's built-in default; the others perturb the input data
 *  (and, for bfsgraph, the graph shape) without touching the IL. */
constexpr double kScales[] = {0.25, 0.5};
constexpr uint64_t kSeeds[] = {0, 0x5EEDFACEull, 7};

workloads::WorkloadScale
at(double factor, uint64_t seed = 0)
{
    workloads::WorkloadScale s{factor};
    s.seed = seed;
    return s;
}

/** Field-for-field comparison of the stats both runs must agree on
 *  when only the execution harness (jobs, cache) changed. */
void
expectIdenticalResults(const sim::AppResult &a, const sim::AppResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.isa, b.isa);
    EXPECT_TRUE(a.verified);
    EXPECT_TRUE(b.verified);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.dynInsts, b.dynInsts);
    EXPECT_EQ(a.valu, b.valu);
    EXPECT_EQ(a.salu, b.salu);
    EXPECT_EQ(a.vmem, b.vmem);
    EXPECT_EQ(a.lds, b.lds);
    EXPECT_EQ(a.branch, b.branch);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.vrfBankConflicts, b.vrfBankConflicts);
    EXPECT_EQ(a.ibFlushes, b.ibFlushes);
    EXPECT_EQ(a.instFootprint, b.instFootprint);
    EXPECT_EQ(a.dataFootprint, b.dataFootprint);
    EXPECT_EQ(a.hazardViolations, b.hazardViolations);
    ASSERT_EQ(a.launches.size(), b.launches.size());
    for (size_t i = 0; i < a.launches.size(); ++i) {
        EXPECT_EQ(a.launches[i].kernel, b.launches[i].kernel);
        EXPECT_EQ(a.launches[i].cycles, b.launches[i].cycles);
        EXPECT_EQ(a.launches[i].instsIssued, b.launches[i].instsIssued);
    }
}

} // namespace

// ---------------------------------------------------------------------
// (a) Functional cross-ISA agreement across the full matrix.
// ---------------------------------------------------------------------

TEST(StressWorkloads, CrossIsaAgreementAcrossScalesAndSeeds)
{
    for (const std::string &w : stressNames()) {
        for (double scale : kScales) {
            for (uint64_t seed : kSeeds) {
                SCOPED_TRACE(w + " scale " + std::to_string(scale) +
                             " seed " + std::to_string(seed));
                // runBoth enforces checkIsaAgreement internally and
                // throws IsaMismatchError (failing the test) if the
                // two abstraction levels disagree functionally.
                auto [hsail, gcn3] = sim::runBoth(w, GpuConfig{},
                                                  at(scale, seed));
                EXPECT_TRUE(hsail.verified);
                EXPECT_TRUE(gcn3.verified);
                EXPECT_EQ(hsail.digest, gcn3.digest);
                EXPECT_EQ(gcn3.hazardViolations, 0u)
                    << "finalized code read a not-yet-ready register";
                auto ptxl = sim::runApp(w, IsaKind::PTXL, GpuConfig{},
                                        at(scale, seed));
                EXPECT_TRUE(ptxl.verified);
                EXPECT_EQ(hsail.digest, ptxl.digest);
                EXPECT_EQ(ptxl.hazardViolations, 0u)
                    << "PTXL scoreboard let a not-ready register by";
                sim::checkIsaAgreement(hsail, ptxl);
            }
        }
    }
}

// ---------------------------------------------------------------------
// (b) Golden divergence directions.
// ---------------------------------------------------------------------

TEST(StressWorkloads, GoldenDivergenceDirections)
{
    const size_t numPairs = NumIsas * (NumIsas - 1) / 2;
    for (const std::string &w : stressNames()) {
        for (double scale : kScales) {
            SCOPED_TRACE(w + " scale " + std::to_string(scale));
            obs::DivergenceReport r =
                obs::divergenceReport(w, GpuConfig{}, at(scale));
            ASSERT_FALSE(r.failed) << r.error;
            ASSERT_EQ(r.entries.size(), 17u);
            ASSERT_EQ(r.isas.size(), NumIsas);
            for (unsigned k = 0; k < NumIsas; ++k)
                EXPECT_EQ(r.isas[k], AllIsas[k]);
            for (const obs::DivergenceEntry &e : r.entries) {
                // The full pair triangle is present and the legacy
                // members mirror the HSAIL<->GCN3 cell exactly.
                ASSERT_EQ(e.values.size(), NumIsas) << e.stat;
                ASSERT_EQ(e.pairs.size(), numPairs) << e.stat;
                const obs::DivergencePair *hg =
                    e.findPair(IsaKind::HSAIL, IsaKind::GCN3);
                ASSERT_NE(hg, nullptr) << e.stat;
                EXPECT_EQ(hg->va, e.hsail);
                EXPECT_EQ(hg->vb, e.gcn3);
                EXPECT_EQ(hg->relDelta, e.relDelta);
                EXPECT_EQ(hg->divergent, e.divergent);
                EXPECT_EQ(hg->paperExpectation, e.paperExpectation);
                double worst = 0;
                for (const obs::DivergencePair &p : e.pairs) {
                    worst = std::max(worst, p.relDelta);
                    // The paper takes no position on PTXL cells.
                    if (p.a == IsaKind::PTXL || p.b == IsaKind::PTXL) {
                        EXPECT_EQ(p.paperExpectation, "") << e.stat;
                    }
                }
                EXPECT_EQ(e.maxRelDelta, worst) << e.stat;

                std::string expect = obs::expectedDivergence(w, e.stat);
                EXPECT_EQ(e.paperExpectation, expect);
                if (expect.empty())
                    continue; // no position (near-threshold)
                EXPECT_EQ(e.divergent, expect == "divergent")
                    << e.stat << ": hsail=" << e.hsail
                    << " gcn3=" << e.gcn3 << " delta=" << e.relDelta;
            }
            // Ranking follows the worst pairwise delta.
            for (size_t i = 1; i < r.entries.size(); ++i)
                EXPECT_GE(r.entries[i - 1].maxRelDelta,
                          r.entries[i].maxRelDelta);
        }
    }
}

TEST(StressWorkloads, GoldenNxNDirectionSignatures)
{
    // The new-result cells of the matrix: per stress workload, which
    // machine-shape statistics diverge in which DIRECTION for each
    // vendor pair. These are golden values — a change here is a
    // finding, not noise.
    auto pinned = [](const obs::DivergenceReport &r,
                     const std::string &stat, IsaKind a, IsaKind b)
        -> const obs::DivergencePair * {
        const obs::DivergenceEntry *e = r.find(stat);
        EXPECT_NE(e, nullptr) << stat;
        if (!e)
            return nullptr;
        const obs::DivergencePair *p = e->findPair(a, b);
        EXPECT_NE(p, nullptr) << stat;
        return p;
    };

    for (const std::string &w : stressNames()) {
        SCOPED_TRACE(w);
        obs::DivergenceReport r =
            obs::divergenceReport(w, GpuConfig{}, at(0.25));
        ASSERT_FALSE(r.failed) << r.error;

        // Scalar pipe: a GCN3-only machine feature. HSAIL and PTXL
        // both measure exactly zero, so the HSAIL<->PTXL cell is the
        // one place the IL is NOT lying about scalarization.
        if (const auto *p =
                pinned(r, "salu", IsaKind::HSAIL, IsaKind::GCN3)) {
            EXPECT_TRUE(p->divergent);
            EXPECT_EQ(p->direction(), "<");
        }
        if (const auto *p =
                pinned(r, "salu", IsaKind::GCN3, IsaKind::PTXL)) {
            EXPECT_TRUE(p->divergent);
            EXPECT_EQ(p->direction(), ">");
        }
        if (const auto *p =
                pinned(r, "salu", IsaKind::HSAIL, IsaKind::PTXL)) {
            EXPECT_FALSE(p->divergent);
            EXPECT_EQ(p->direction(), "=");
        }

        // Encoding size: PTXL's fixed 16-byte words more than double
        // the footprint of both the IL and GCN3's 4/8-byte stream —
        // the IL-level I-side picture is wrong for BOTH vendors, but
        // in different magnitudes.
        if (const auto *p = pinned(r, "instFootprint", IsaKind::HSAIL,
                                   IsaKind::PTXL)) {
            EXPECT_TRUE(p->divergent);
            EXPECT_EQ(p->direction(), "<");
        }
        if (const auto *p = pinned(r, "instFootprint", IsaKind::GCN3,
                                   IsaKind::PTXL)) {
            EXPECT_TRUE(p->divergent);
            EXPECT_EQ(p->direction(), "<");
        }

        // ... and the footprint inflation reaches the I-cache: PTXL
        // misses more than either other level on every stress kernel.
        if (const auto *p = pinned(r, "l1iMisses", IsaKind::HSAIL,
                                   IsaKind::PTXL)) {
            EXPECT_TRUE(p->divergent);
            EXPECT_EQ(p->direction(), "<");
        }

        // VRF banking: the finalizer's GCN3 allocator packs registers
        // to dodge bank conflicts; the IL's virtual registers and
        // PTXL's 1:1-preserved indices both conflict far more.
        if (const auto *p = pinned(r, "vrfBankConflicts",
                                   IsaKind::HSAIL, IsaKind::GCN3)) {
            EXPECT_TRUE(p->divergent);
            EXPECT_EQ(p->direction(), ">");
        }
        if (const auto *p = pinned(r, "vrfBankConflicts",
                                   IsaKind::GCN3, IsaKind::PTXL)) {
            EXPECT_TRUE(p->divergent);
            EXPECT_EQ(p->direction(), "<");
        }

        // Lane-visible data is abstraction-invariant: the data
        // footprint must be identical in every cell of the triangle.
        const obs::DivergenceEntry *df = r.find("dataFootprint");
        ASSERT_NE(df, nullptr);
        for (const obs::DivergencePair &p : df->pairs) {
            EXPECT_FALSE(p.divergent);
            EXPECT_EQ(p.direction(), "=");
        }
    }
}

TEST(StressWorkloads, BfsGraphIbFlushDivergenceWellPastThreshold)
{
    // The headline bfsgraph signature: nested data-dependent
    // divergence makes the HSAIL reconvergence stack pop discontinuous
    // PCs far more often than GCN3's taken-branch redirects, and the
    // effect must clear the 10% threshold with a wide margin at every
    // seed, not hover at it.
    for (uint64_t seed : kSeeds) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        auto r = obs::divergenceReport("bfsgraph", GpuConfig{},
                                       at(0.25, seed));
        ASSERT_FALSE(r.failed) << r.error;
        const obs::DivergenceEntry *e = r.find("ibFlushes");
        ASSERT_NE(e, nullptr);
        EXPECT_GT(e->relDelta, 2 * r.threshold);
        EXPECT_GT(e->hsail, e->gcn3)
            << "RS pops must inflate HSAIL IB flushes, not deflate";
    }
}

TEST(StressWorkloads, LdsSwizzleBankConflictsDivergeSimdUtilSimilar)
{
    auto r = obs::divergenceReport("ldsswizzle", GpuConfig{}, at(0.5));
    ASSERT_FALSE(r.failed) << r.error;
    const obs::DivergenceEntry *bc = r.find("vrfBankConflicts");
    const obs::DivergenceEntry *util = r.find("simdUtil");
    ASSERT_NE(bc, nullptr);
    ASSERT_NE(util, nullptr);
    EXPECT_GT(bc->relDelta, 2 * r.threshold);
    EXPECT_LE(util->relDelta, r.threshold);
    // The soak is fully converged: every lane live at both levels.
    EXPECT_DOUBLE_EQ(util->hsail, 1.0);
    EXPECT_DOUBLE_EQ(util->gcn3, 1.0);
}

TEST(StressWorkloads, ExpectationOverridesLayerOverPaperDefaults)
{
    // Per-workload override wins ...
    EXPECT_EQ(obs::expectedDivergence("bfsgraph", "ibFlushes"),
              "divergent");
    EXPECT_EQ(obs::expectedDivergence("ldsswizzle", "ipc"), "similar");
    EXPECT_EQ(obs::expectedDivergence("atomicred", "ibFlushes"),
              "similar");
    EXPECT_EQ(obs::expectedDivergence("bfsgraph", "vmem"), "");
    // ... the paper's Table 5 defaults are untouched elsewhere ...
    EXPECT_EQ(obs::expectedDivergence("VecAdd", "ipc"), "divergent");
    EXPECT_EQ(obs::expectedDivergence("VecAdd", "ibFlushes"),
              "divergent");
    EXPECT_EQ(obs::expectedDivergence("FFT", "simdUtil"), "similar");
    // ... and unknown stats take no position.
    EXPECT_EQ(obs::expectedDivergence("VecAdd", "noSuchStat"), "");
}

// ---------------------------------------------------------------------
// (c) Determinism across LAST_JOBS and the artifact cache.
// ---------------------------------------------------------------------

TEST(StressWorkloads, DeterministicAcrossJobCounts)
{
    std::vector<sim::RunSpec> specs;
    for (const std::string &w : stressNames())
        for (IsaKind isa : AllIsas)
            specs.push_back({w, isa, GpuConfig{}, at(0.25)});
    auto serial = sim::runMany(specs, 1);
    auto parallel = sim::runMany(specs, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE(specs[i].workload + "/" +
                     std::string(isaName(specs[i].isa)));
        expectIdenticalResults(serial[i], parallel[i]);
    }
}

TEST(StressWorkloads, DeterministicAcrossArtifactCacheSetting)
{
    for (const std::string &w : stressNames()) {
        for (IsaKind isa : AllIsas) {
            SCOPED_TRACE(w + "/" + std::string(isaName(isa)));
            sim::ArtifactCache::setEnabled(true);
            auto warm = sim::runApp(w, isa, GpuConfig{}, at(0.25));
            auto hit = sim::runApp(w, isa, GpuConfig{}, at(0.25));
            sim::ArtifactCache::setEnabled(false);
            auto cold = sim::runApp(w, isa, GpuConfig{}, at(0.25));
            sim::ArtifactCache::setEnabled(true);
            expectIdenticalResults(warm, hit);
            expectIdenticalResults(warm, cold);
        }
    }
}

// ---------------------------------------------------------------------
// Artifact-cache key fix: kernel-shaping knobs participate in the key.
// ---------------------------------------------------------------------

TEST(StressWorkloads, LdsSwizzleKnobVariantsDoNotAliasInCache)
{
    // stride/pad are IL immediates: each variant is a DIFFERENT kernel
    // under the SAME (workload, isa, scale, seq). Before the key fix,
    // the second variant would hit the first's entry and trip the
    // cache's digest-soundness panic (or worse, silently reuse the
    // wrong KernelCode). Interleaving variants with the cache hot
    // proves the knobs are part of the key.
    sim::ArtifactCache::setEnabled(true);
    sim::ArtifactCache::instance().clear();

    auto withKnobs = [](int stride, int pad) {
        workloads::WorkloadScale s{0.25};
        s.ldsStrideWords = stride;
        s.ldsPadWords = pad;
        return s;
    };

    auto a1 = sim::runBoth("ldsswizzle", GpuConfig{}, withKnobs(8, 0));
    auto b1 = sim::runBoth("ldsswizzle", GpuConfig{}, withKnobs(9, 1));
    uint64_t missesAfterBuild = sim::ArtifactCache::instance().misses();
    auto a2 = sim::runBoth("ldsswizzle", GpuConfig{}, withKnobs(8, 0));
    auto b2 = sim::runBoth("ldsswizzle", GpuConfig{}, withKnobs(9, 1));

    // Re-running a variant is a pure cache hit ...
    EXPECT_EQ(sim::ArtifactCache::instance().misses(), missesAfterBuild);
    expectIdenticalResults(a1.first, a2.first);
    expectIdenticalResults(a1.second, a2.second);
    expectIdenticalResults(b1.first, b2.first);
    expectIdenticalResults(b1.second, b2.second);

    // ... the variants exchange the same lane values (the swizzle is
    // layout-invariant), so a silent artifact mixup would NOT show up
    // in the digest — but it would show up in the LDS bank-conflict
    // timing: stride 8 serializes 64 lanes over 4 banks, stride 9+1
    // (10 words, coprime to 32) spreads them almost perfectly.
    EXPECT_EQ(a1.first.digest, b1.first.digest);
    EXPECT_GT(a1.first.cycles, b1.first.cycles);
    EXPECT_GT(a1.second.cycles, b1.second.cycles);
}

TEST(StressWorkloads, BackendVariantsDoNotAliasInArtifactCache)
{
    // GCN3 and PTXL lower the SAME IL under the SAME (workload, scale,
    // seq) — only the backend differs. The artifact-cache key folds in
    // the backend's configDigest, so interleaving vendors with the
    // cache hot must re-serve each backend its own KernelCode: re-runs
    // are pure hits (miss count frozen) and keep their vendor's
    // machine-shape signature. An aliased entry would hand PTXL a
    // scalarized, waitcnt-carrying GCN3 kernel (or GCN3 a
    // barrier-bracketed PTXL one) — invisible in the digest, loud in
    // the pipe mix.
    sim::ArtifactCache::setEnabled(true);
    sim::ArtifactCache::instance().clear();

    auto g1 =
        sim::runApp("atomicred", IsaKind::GCN3, GpuConfig{}, at(0.25));
    auto p1 =
        sim::runApp("atomicred", IsaKind::PTXL, GpuConfig{}, at(0.25));
    uint64_t missesAfterBuild = sim::ArtifactCache::instance().misses();
    uint64_t hitsBefore = sim::ArtifactCache::instance().hits();
    auto g2 =
        sim::runApp("atomicred", IsaKind::GCN3, GpuConfig{}, at(0.25));
    auto p2 =
        sim::runApp("atomicred", IsaKind::PTXL, GpuConfig{}, at(0.25));
    EXPECT_EQ(sim::ArtifactCache::instance().misses(), missesAfterBuild);
    EXPECT_GT(sim::ArtifactCache::instance().hits(), hitsBefore);
    expectIdenticalResults(g1, g2);
    expectIdenticalResults(p1, p2);
    EXPECT_EQ(g2.digest, p2.digest);
    EXPECT_GT(g2.salu, 0u);
    EXPECT_EQ(p2.salu, 0u);
    EXPECT_GT(g2.waitcnt, 0u);
    EXPECT_EQ(p2.waitcnt, 0u);
}

// ---------------------------------------------------------------------
// bfsgraph reconvergence-stack property (randomized seeds, both ISAs).
// ---------------------------------------------------------------------

TEST(StressWorkloads, BfsRsDepthHistogramNonDegenerate)
{
    // The kernel nests level-membership, degree, edge-loop, and
    // relaxation conditionals: the HSAIL reconvergence stack must
    // actually reach depth >= 3 (a degenerate single-level histogram
    // would mean the nesting collapsed), and across the run more than
    // one depth must occur. GCN3 has no RS; its side of the property
    // is that exec-masked execution retires the identical lane-visible
    // state — digest equality via checkIsaAgreement — with zero hazard
    // violations, per seed.
    for (uint64_t seed :
         {uint64_t(0), uint64_t(0xC0FFEE), uint64_t(0x12345678)}) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        uint64_t maxDepth = 0, pushes = 0;
        std::array<uint64_t, stats::Histogram::NumBuckets> buckets{};
        auto hsail = sim::runApp(
            "bfsgraph", IsaKind::HSAIL, GpuConfig{}, at(0.25, seed),
            [&](runtime::Runtime &rt) {
                for (unsigned i = 0; i < rt.gpu().numCus(); ++i) {
                    const auto &h = rt.gpu().computeUnit(i).rsDepth;
                    maxDepth = std::max(maxDepth, h.maxSample());
                    pushes += h.samples();
                    for (unsigned b = 0; b < buckets.size(); ++b)
                        buckets[b] += h.bucketCount(b);
                }
            });
        ASSERT_TRUE(hsail.verified);
        EXPECT_GE(maxDepth, 3u);
        EXPECT_GT(pushes, 0u);
        unsigned distinct = 0;
        for (uint64_t c : buckets)
            distinct += c != 0;
        EXPECT_GE(distinct, 2u) << "RS depth never varied";

        // Neither machine ISA has an RS: GCN3 predicates through the
        // exec mask, PTXL reconverges on its hardware warp-split stack
        // via BSSY/BSYNC. Both must retire identical lane-visible
        // state without ever touching the simulator's RS histogram.
        for (IsaKind isa : {IsaKind::GCN3, IsaKind::PTXL}) {
            SCOPED_TRACE(isaName(isa));
            uint64_t machinePushes = 0;
            auto machine = sim::runApp(
                "bfsgraph", isa, GpuConfig{}, at(0.25, seed),
                [&](runtime::Runtime &rt) {
                    for (unsigned i = 0; i < rt.gpu().numCus(); ++i)
                        machinePushes +=
                            rt.gpu().computeUnit(i).rsDepth.samples();
                });
            EXPECT_EQ(machinePushes, 0u)
                << isaName(isa) << " must never touch an RS";
            EXPECT_EQ(machine.hazardViolations, 0u);
            sim::checkIsaAgreement(hsail, machine); // throws on mismatch
        }
    }
}

// ---------------------------------------------------------------------
// pipeline: multi-kernel dispatch records and overlap.
// ---------------------------------------------------------------------

TEST(StressWorkloads, PipelineLaunchRecordsAndOverlap)
{
    auto [hsail, gcn3] = sim::runBoth("pipeline", GpuConfig{}, at(0.5));
    auto ptxl =
        sim::runApp("pipeline", IsaKind::PTXL, GpuConfig{}, at(0.5));
    ASSERT_TRUE(ptxl.verified);
    const std::vector<std::string> want = {
        "pipe_produce", "pipe_produce", "pipe_transform",
        "pipe_transform", "pipe_reduce", "pipe_reduce",
    };
    for (const sim::AppResult *r : {&hsail, &gcn3, &ptxl}) {
        SCOPED_TRACE(isaName(r->isa));
        ASSERT_EQ(r->launches.size(), want.size());
        uint64_t recorded = 0, spanSum = 0;
        for (size_t i = 0; i < want.size(); ++i) {
            EXPECT_EQ(r->launches[i].kernel, want[i]);
            EXPECT_GT(r->launches[i].cycles, 0u);
            EXPECT_GT(r->launches[i].instsIssued, 0u);
            recorded += r->launches[i].instsIssued;
            spanSum += r->launches[i].cycles;
        }
        // Per-launch instruction attribution is exact: the records
        // partition the app's dynamic instruction count.
        EXPECT_EQ(recorded, r->dynInsts);
        // And AppResult.cycles aggregates exactly these records.
        EXPECT_EQ(spanSum, r->cycles);
    }
}

TEST(StressWorkloads, DispatchAsyncOverlapsIndependentKernels)
{
    // The pipeline workload relies on dispatchAsync()/sync() actually
    // overlapping data-independent kernels. Witness it directly at the
    // Runtime level: two kernels dispatched back-to-back synchronously
    // cost the sum of their wall clocks; the same two in flight
    // together must finish in meaningfully less (their workgroups
    // share the 8 CUs' wavefront slots).
    auto makeKernel = [](const std::string &name, uint32_t mul) {
        hsail::KernelBuilder kb(name);
        kb.setKernargBytes(16);
        hsail::Val in = kb.ldKernarg(hsail::DataType::U64, 0);
        hsail::Val out = kb.ldKernarg(hsail::DataType::U64, 8);
        hsail::Val gid = kb.workitemAbsId();
        hsail::Val off =
            kb.cvt(hsail::DataType::U64, kb.mul(gid, kb.immU32(4)));
        hsail::Val v = kb.ldGlobal(hsail::DataType::U32, kb.add(in, off));
        v = kb.add(kb.mul(v, kb.immU32(mul)), gid);
        kb.stGlobal(v, kb.add(out, off));
        return kb.build();
    };

    constexpr unsigned N = 2048;
    struct Args
    {
        uint64_t in, out;
    };

    auto setup = [&](runtime::Runtime &rt, Args &a, Args &b) {
        a.in = rt.allocGlobal(N * 4);
        a.out = rt.allocGlobal(N * 4);
        b.in = rt.allocGlobal(N * 4);
        b.out = rt.allocGlobal(N * 4);
        for (unsigned i = 0; i < N; ++i) {
            rt.writeGlobal<uint32_t>(a.in + 4 * i, i);
            rt.writeGlobal<uint32_t>(b.in + 4 * i, 2 * i);
        }
    };

    for (IsaKind isa : AllIsas) {
        SCOPED_TRACE(isaName(isa));
        auto il1 = makeKernel("ovl_a", 3);
        auto il2 = makeKernel("ovl_b", 5);
        finalizer::compactIlRegisters(il1);
        finalizer::compactIlRegisters(il2);
        std::unique_ptr<arch::KernelCode> mach1, mach2;
        if (isa != IsaKind::HSAIL) {
            mach1 = finalizer::finalize(il1, isa, GpuConfig{});
            mach2 = finalizer::finalize(il2, isa, GpuConfig{});
        }
        const arch::KernelCode &c1 = mach1 ? *mach1 : *il1.code;
        const arch::KernelCode &c2 = mach2 ? *mach2 : *il2.code;

        Cycle serial = 0, overlapped = 0;
        {
            runtime::Runtime rt;
            Args a, b;
            setup(rt, a, b);
            serial += rt.dispatch(c1, N, 256, &a, sizeof(a));
            serial += rt.dispatch(c2, N, 256, &b, sizeof(b));
        }
        {
            runtime::Runtime rt;
            Args a, b;
            setup(rt, a, b);
            rt.dispatchAsync(c1, N, 256, &a, sizeof(a));
            rt.dispatchAsync(c2, N, 256, &b, sizeof(b));
            overlapped = rt.sync();
            ASSERT_EQ(rt.launchRecords().size(), 2u);
            for (unsigned i = 0; i < N; i += 97) {
                EXPECT_EQ(rt.readGlobal<uint32_t>(a.out + 4 * i),
                          i * 3u + i);
                EXPECT_EQ(rt.readGlobal<uint32_t>(b.out + 4 * i),
                          2 * i * 5u + i);
            }
        }
        // Require a real margin, not a one-cycle technicality.
        EXPECT_LT(overlapped, serial - serial / 10)
            << "overlapped=" << overlapped << " serial=" << serial;
    }
}
