/**
 * @file
 * Differential tests for the stress workloads beyond Table 5
 * (atomicred, ldsswizzle, bfsgraph, pipeline). Per workload x scale x
 * seed they pin down:
 *  - functional cross-ISA agreement (runBoth / checkIsaAgreement);
 *  - the golden DIRECTION of every divergence metric against the
 *    per-workload expectation table (obs::expectedDivergence) — e.g.
 *    bfsgraph must diverge on IB flushes well past the threshold while
 *    ldsswizzle diverges on bank conflicts with simdUtil similar;
 *  - determinism across LAST_JOBS settings and artifact-cache on/off;
 *  - the artifact-cache key fix: ldsswizzle's stride/padding knobs are
 *    part of the key, so parameter variants never alias;
 *  - the bfsgraph reconvergence-stack property: the HSAIL RS-depth
 *    histogram is non-degenerate (nested divergence actually nests)
 *    while GCN3 retires the identical lane-visible results with zero
 *    hazard violations.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "finalizer/finalizer.hh"
#include "finalizer/regalloc.hh"
#include "hsail/builder.hh"
#include "obs/divergence.hh"
#include "sim/artifact_cache.hh"
#include "sim/experiment.hh"
#include "sim/parallel.hh"
#include "workloads/workload.hh"

using namespace last;

namespace
{

const std::vector<std::string> &
stressNames()
{
    static const std::vector<std::string> names =
        workloads::stressWorkloadNames();
    return names;
}

/** The matrix every stress assertion runs over. Seed 0 selects each
 *  workload's built-in default; the others perturb the input data
 *  (and, for bfsgraph, the graph shape) without touching the IL. */
constexpr double kScales[] = {0.25, 0.5};
constexpr uint64_t kSeeds[] = {0, 0x5EEDFACEull, 7};

workloads::WorkloadScale
at(double factor, uint64_t seed = 0)
{
    workloads::WorkloadScale s{factor};
    s.seed = seed;
    return s;
}

/** Field-for-field comparison of the stats both runs must agree on
 *  when only the execution harness (jobs, cache) changed. */
void
expectIdenticalResults(const sim::AppResult &a, const sim::AppResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.isa, b.isa);
    EXPECT_TRUE(a.verified);
    EXPECT_TRUE(b.verified);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.dynInsts, b.dynInsts);
    EXPECT_EQ(a.valu, b.valu);
    EXPECT_EQ(a.salu, b.salu);
    EXPECT_EQ(a.vmem, b.vmem);
    EXPECT_EQ(a.lds, b.lds);
    EXPECT_EQ(a.branch, b.branch);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.vrfBankConflicts, b.vrfBankConflicts);
    EXPECT_EQ(a.ibFlushes, b.ibFlushes);
    EXPECT_EQ(a.instFootprint, b.instFootprint);
    EXPECT_EQ(a.dataFootprint, b.dataFootprint);
    EXPECT_EQ(a.hazardViolations, b.hazardViolations);
    ASSERT_EQ(a.launches.size(), b.launches.size());
    for (size_t i = 0; i < a.launches.size(); ++i) {
        EXPECT_EQ(a.launches[i].kernel, b.launches[i].kernel);
        EXPECT_EQ(a.launches[i].cycles, b.launches[i].cycles);
        EXPECT_EQ(a.launches[i].instsIssued, b.launches[i].instsIssued);
    }
}

} // namespace

// ---------------------------------------------------------------------
// (a) Functional cross-ISA agreement across the full matrix.
// ---------------------------------------------------------------------

TEST(StressWorkloads, CrossIsaAgreementAcrossScalesAndSeeds)
{
    for (const std::string &w : stressNames()) {
        for (double scale : kScales) {
            for (uint64_t seed : kSeeds) {
                SCOPED_TRACE(w + " scale " + std::to_string(scale) +
                             " seed " + std::to_string(seed));
                // runBoth enforces checkIsaAgreement internally and
                // throws IsaMismatchError (failing the test) if the
                // two abstraction levels disagree functionally.
                auto [hsail, gcn3] = sim::runBoth(w, GpuConfig{},
                                                  at(scale, seed));
                EXPECT_TRUE(hsail.verified);
                EXPECT_TRUE(gcn3.verified);
                EXPECT_EQ(hsail.digest, gcn3.digest);
                EXPECT_EQ(gcn3.hazardViolations, 0u)
                    << "finalized code read a not-yet-ready register";
            }
        }
    }
}

// ---------------------------------------------------------------------
// (b) Golden divergence directions.
// ---------------------------------------------------------------------

TEST(StressWorkloads, GoldenDivergenceDirections)
{
    for (const std::string &w : stressNames()) {
        for (double scale : kScales) {
            SCOPED_TRACE(w + " scale " + std::to_string(scale));
            obs::DivergenceReport r =
                obs::divergenceReport(w, GpuConfig{}, at(scale));
            ASSERT_FALSE(r.failed) << r.error;
            ASSERT_EQ(r.entries.size(), 17u);
            for (const obs::DivergenceEntry &e : r.entries) {
                std::string expect = obs::expectedDivergence(w, e.stat);
                EXPECT_EQ(e.paperExpectation, expect);
                if (expect.empty())
                    continue; // no position (near-threshold)
                EXPECT_EQ(e.divergent, expect == "divergent")
                    << e.stat << ": hsail=" << e.hsail
                    << " gcn3=" << e.gcn3 << " delta=" << e.relDelta;
            }
        }
    }
}

TEST(StressWorkloads, BfsGraphIbFlushDivergenceWellPastThreshold)
{
    // The headline bfsgraph signature: nested data-dependent
    // divergence makes the HSAIL reconvergence stack pop discontinuous
    // PCs far more often than GCN3's taken-branch redirects, and the
    // effect must clear the 10% threshold with a wide margin at every
    // seed, not hover at it.
    for (uint64_t seed : kSeeds) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        auto r = obs::divergenceReport("bfsgraph", GpuConfig{},
                                       at(0.25, seed));
        ASSERT_FALSE(r.failed) << r.error;
        const obs::DivergenceEntry *e = r.find("ibFlushes");
        ASSERT_NE(e, nullptr);
        EXPECT_GT(e->relDelta, 2 * r.threshold);
        EXPECT_GT(e->hsail, e->gcn3)
            << "RS pops must inflate HSAIL IB flushes, not deflate";
    }
}

TEST(StressWorkloads, LdsSwizzleBankConflictsDivergeSimdUtilSimilar)
{
    auto r = obs::divergenceReport("ldsswizzle", GpuConfig{}, at(0.5));
    ASSERT_FALSE(r.failed) << r.error;
    const obs::DivergenceEntry *bc = r.find("vrfBankConflicts");
    const obs::DivergenceEntry *util = r.find("simdUtil");
    ASSERT_NE(bc, nullptr);
    ASSERT_NE(util, nullptr);
    EXPECT_GT(bc->relDelta, 2 * r.threshold);
    EXPECT_LE(util->relDelta, r.threshold);
    // The soak is fully converged: every lane live at both levels.
    EXPECT_DOUBLE_EQ(util->hsail, 1.0);
    EXPECT_DOUBLE_EQ(util->gcn3, 1.0);
}

TEST(StressWorkloads, ExpectationOverridesLayerOverPaperDefaults)
{
    // Per-workload override wins ...
    EXPECT_EQ(obs::expectedDivergence("bfsgraph", "ibFlushes"),
              "divergent");
    EXPECT_EQ(obs::expectedDivergence("ldsswizzle", "ipc"), "similar");
    EXPECT_EQ(obs::expectedDivergence("atomicred", "ibFlushes"),
              "similar");
    EXPECT_EQ(obs::expectedDivergence("bfsgraph", "vmem"), "");
    // ... the paper's Table 5 defaults are untouched elsewhere ...
    EXPECT_EQ(obs::expectedDivergence("VecAdd", "ipc"), "divergent");
    EXPECT_EQ(obs::expectedDivergence("VecAdd", "ibFlushes"),
              "divergent");
    EXPECT_EQ(obs::expectedDivergence("FFT", "simdUtil"), "similar");
    // ... and unknown stats take no position.
    EXPECT_EQ(obs::expectedDivergence("VecAdd", "noSuchStat"), "");
}

// ---------------------------------------------------------------------
// (c) Determinism across LAST_JOBS and the artifact cache.
// ---------------------------------------------------------------------

TEST(StressWorkloads, DeterministicAcrossJobCounts)
{
    std::vector<sim::RunSpec> specs;
    for (const std::string &w : stressNames()) {
        specs.push_back({w, IsaKind::HSAIL, GpuConfig{}, at(0.25)});
        specs.push_back({w, IsaKind::GCN3, GpuConfig{}, at(0.25)});
    }
    auto serial = sim::runMany(specs, 1);
    auto parallel = sim::runMany(specs, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE(specs[i].workload + "/" +
                     std::string(isaName(specs[i].isa)));
        expectIdenticalResults(serial[i], parallel[i]);
    }
}

TEST(StressWorkloads, DeterministicAcrossArtifactCacheSetting)
{
    for (const std::string &w : stressNames()) {
        for (IsaKind isa : {IsaKind::HSAIL, IsaKind::GCN3}) {
            SCOPED_TRACE(w + "/" + std::string(isaName(isa)));
            sim::ArtifactCache::setEnabled(true);
            auto warm = sim::runApp(w, isa, GpuConfig{}, at(0.25));
            auto hit = sim::runApp(w, isa, GpuConfig{}, at(0.25));
            sim::ArtifactCache::setEnabled(false);
            auto cold = sim::runApp(w, isa, GpuConfig{}, at(0.25));
            sim::ArtifactCache::setEnabled(true);
            expectIdenticalResults(warm, hit);
            expectIdenticalResults(warm, cold);
        }
    }
}

// ---------------------------------------------------------------------
// Artifact-cache key fix: kernel-shaping knobs participate in the key.
// ---------------------------------------------------------------------

TEST(StressWorkloads, LdsSwizzleKnobVariantsDoNotAliasInCache)
{
    // stride/pad are IL immediates: each variant is a DIFFERENT kernel
    // under the SAME (workload, isa, scale, seq). Before the key fix,
    // the second variant would hit the first's entry and trip the
    // cache's digest-soundness panic (or worse, silently reuse the
    // wrong KernelCode). Interleaving variants with the cache hot
    // proves the knobs are part of the key.
    sim::ArtifactCache::setEnabled(true);
    sim::ArtifactCache::instance().clear();

    auto withKnobs = [](int stride, int pad) {
        workloads::WorkloadScale s{0.25};
        s.ldsStrideWords = stride;
        s.ldsPadWords = pad;
        return s;
    };

    auto a1 = sim::runBoth("ldsswizzle", GpuConfig{}, withKnobs(8, 0));
    auto b1 = sim::runBoth("ldsswizzle", GpuConfig{}, withKnobs(9, 1));
    uint64_t missesAfterBuild = sim::ArtifactCache::instance().misses();
    auto a2 = sim::runBoth("ldsswizzle", GpuConfig{}, withKnobs(8, 0));
    auto b2 = sim::runBoth("ldsswizzle", GpuConfig{}, withKnobs(9, 1));

    // Re-running a variant is a pure cache hit ...
    EXPECT_EQ(sim::ArtifactCache::instance().misses(), missesAfterBuild);
    expectIdenticalResults(a1.first, a2.first);
    expectIdenticalResults(a1.second, a2.second);
    expectIdenticalResults(b1.first, b2.first);
    expectIdenticalResults(b1.second, b2.second);

    // ... the variants exchange the same lane values (the swizzle is
    // layout-invariant), so a silent artifact mixup would NOT show up
    // in the digest — but it would show up in the LDS bank-conflict
    // timing: stride 8 serializes 64 lanes over 4 banks, stride 9+1
    // (10 words, coprime to 32) spreads them almost perfectly.
    EXPECT_EQ(a1.first.digest, b1.first.digest);
    EXPECT_GT(a1.first.cycles, b1.first.cycles);
    EXPECT_GT(a1.second.cycles, b1.second.cycles);
}

// ---------------------------------------------------------------------
// bfsgraph reconvergence-stack property (randomized seeds, both ISAs).
// ---------------------------------------------------------------------

TEST(StressWorkloads, BfsRsDepthHistogramNonDegenerate)
{
    // The kernel nests level-membership, degree, edge-loop, and
    // relaxation conditionals: the HSAIL reconvergence stack must
    // actually reach depth >= 3 (a degenerate single-level histogram
    // would mean the nesting collapsed), and across the run more than
    // one depth must occur. GCN3 has no RS; its side of the property
    // is that exec-masked execution retires the identical lane-visible
    // state — digest equality via checkIsaAgreement — with zero hazard
    // violations, per seed.
    for (uint64_t seed :
         {uint64_t(0), uint64_t(0xC0FFEE), uint64_t(0x12345678)}) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        uint64_t maxDepth = 0, pushes = 0;
        std::array<uint64_t, stats::Histogram::NumBuckets> buckets{};
        auto hsail = sim::runApp(
            "bfsgraph", IsaKind::HSAIL, GpuConfig{}, at(0.25, seed),
            [&](runtime::Runtime &rt) {
                for (unsigned i = 0; i < rt.gpu().numCus(); ++i) {
                    const auto &h = rt.gpu().computeUnit(i).rsDepth;
                    maxDepth = std::max(maxDepth, h.maxSample());
                    pushes += h.samples();
                    for (unsigned b = 0; b < buckets.size(); ++b)
                        buckets[b] += h.bucketCount(b);
                }
            });
        ASSERT_TRUE(hsail.verified);
        EXPECT_GE(maxDepth, 3u);
        EXPECT_GT(pushes, 0u);
        unsigned distinct = 0;
        for (uint64_t c : buckets)
            distinct += c != 0;
        EXPECT_GE(distinct, 2u) << "RS depth never varied";

        uint64_t gcnPushes = 0;
        auto gcn3 = sim::runApp(
            "bfsgraph", IsaKind::GCN3, GpuConfig{}, at(0.25, seed),
            [&](runtime::Runtime &rt) {
                for (unsigned i = 0; i < rt.gpu().numCus(); ++i)
                    gcnPushes += rt.gpu().computeUnit(i).rsDepth.samples();
            });
        EXPECT_EQ(gcnPushes, 0u) << "GCN3 must never touch an RS";
        EXPECT_EQ(gcn3.hazardViolations, 0u);
        sim::checkIsaAgreement(hsail, gcn3); // throws on lane mismatch
    }
}

// ---------------------------------------------------------------------
// pipeline: multi-kernel dispatch records and overlap.
// ---------------------------------------------------------------------

TEST(StressWorkloads, PipelineLaunchRecordsAndOverlap)
{
    auto [hsail, gcn3] = sim::runBoth("pipeline", GpuConfig{}, at(0.5));
    const std::vector<std::string> want = {
        "pipe_produce", "pipe_produce", "pipe_transform",
        "pipe_transform", "pipe_reduce", "pipe_reduce",
    };
    for (const sim::AppResult *r : {&hsail, &gcn3}) {
        SCOPED_TRACE(isaName(r->isa));
        ASSERT_EQ(r->launches.size(), want.size());
        uint64_t recorded = 0, spanSum = 0;
        for (size_t i = 0; i < want.size(); ++i) {
            EXPECT_EQ(r->launches[i].kernel, want[i]);
            EXPECT_GT(r->launches[i].cycles, 0u);
            EXPECT_GT(r->launches[i].instsIssued, 0u);
            recorded += r->launches[i].instsIssued;
            spanSum += r->launches[i].cycles;
        }
        // Per-launch instruction attribution is exact: the records
        // partition the app's dynamic instruction count.
        EXPECT_EQ(recorded, r->dynInsts);
        // And AppResult.cycles aggregates exactly these records.
        EXPECT_EQ(spanSum, r->cycles);
    }
}

TEST(StressWorkloads, DispatchAsyncOverlapsIndependentKernels)
{
    // The pipeline workload relies on dispatchAsync()/sync() actually
    // overlapping data-independent kernels. Witness it directly at the
    // Runtime level: two kernels dispatched back-to-back synchronously
    // cost the sum of their wall clocks; the same two in flight
    // together must finish in meaningfully less (their workgroups
    // share the 8 CUs' wavefront slots).
    auto makeKernel = [](const std::string &name, uint32_t mul) {
        hsail::KernelBuilder kb(name);
        kb.setKernargBytes(16);
        hsail::Val in = kb.ldKernarg(hsail::DataType::U64, 0);
        hsail::Val out = kb.ldKernarg(hsail::DataType::U64, 8);
        hsail::Val gid = kb.workitemAbsId();
        hsail::Val off =
            kb.cvt(hsail::DataType::U64, kb.mul(gid, kb.immU32(4)));
        hsail::Val v = kb.ldGlobal(hsail::DataType::U32, kb.add(in, off));
        v = kb.add(kb.mul(v, kb.immU32(mul)), gid);
        kb.stGlobal(v, kb.add(out, off));
        return kb.build();
    };

    constexpr unsigned N = 2048;
    struct Args
    {
        uint64_t in, out;
    };

    auto setup = [&](runtime::Runtime &rt, Args &a, Args &b) {
        a.in = rt.allocGlobal(N * 4);
        a.out = rt.allocGlobal(N * 4);
        b.in = rt.allocGlobal(N * 4);
        b.out = rt.allocGlobal(N * 4);
        for (unsigned i = 0; i < N; ++i) {
            rt.writeGlobal<uint32_t>(a.in + 4 * i, i);
            rt.writeGlobal<uint32_t>(b.in + 4 * i, 2 * i);
        }
    };

    for (IsaKind isa : {IsaKind::HSAIL, IsaKind::GCN3}) {
        SCOPED_TRACE(isaName(isa));
        auto il1 = makeKernel("ovl_a", 3);
        auto il2 = makeKernel("ovl_b", 5);
        finalizer::compactIlRegisters(il1);
        finalizer::compactIlRegisters(il2);
        std::unique_ptr<arch::KernelCode> gcn1, gcn2;
        if (isa == IsaKind::GCN3) {
            gcn1 = finalizer::finalize(il1, GpuConfig{});
            gcn2 = finalizer::finalize(il2, GpuConfig{});
        }
        const arch::KernelCode &c1 = gcn1 ? *gcn1 : *il1.code;
        const arch::KernelCode &c2 = gcn2 ? *gcn2 : *il2.code;

        Cycle serial = 0, overlapped = 0;
        {
            runtime::Runtime rt;
            Args a, b;
            setup(rt, a, b);
            serial += rt.dispatch(c1, N, 256, &a, sizeof(a));
            serial += rt.dispatch(c2, N, 256, &b, sizeof(b));
        }
        {
            runtime::Runtime rt;
            Args a, b;
            setup(rt, a, b);
            rt.dispatchAsync(c1, N, 256, &a, sizeof(a));
            rt.dispatchAsync(c2, N, 256, &b, sizeof(b));
            overlapped = rt.sync();
            ASSERT_EQ(rt.launchRecords().size(), 2u);
            for (unsigned i = 0; i < N; i += 97) {
                EXPECT_EQ(rt.readGlobal<uint32_t>(a.out + 4 * i),
                          i * 3u + i);
                EXPECT_EQ(rt.readGlobal<uint32_t>(b.out + 4 * i),
                          2 * i * 5u + i);
            }
        }
        // Require a real margin, not a one-cycle technicality.
        EXPECT_LT(overlapped, serial - serial / 10)
            << "overlapped=" << overlapped << " serial=" << serial;
    }
}
