#include "helpers.hh"

#include <vector>

namespace last::test
{

using namespace hsail;

IlKernel
randomKernel(uint64_t seed)
{
    Rng rng(seed ^ 0xdecafbadull);
    KernelBuilder kb("random_" + std::to_string(seed));
    kb.setKernargBytes(16);

    Val in = kb.ldKernarg(DataType::U64, 0);
    Val out = kb.ldKernarg(DataType::U64, 8);
    Val gid = kb.workitemAbsId();
    Val off = kb.cvt(DataType::U64, kb.mul(gid, kb.immU32(4)));

    // Value pools.
    std::vector<Val> us{gid, kb.immU32(uint32_t(rng.next())),
                        kb.workitemId(), kb.workgroupId()};
    std::vector<Val> fs{
        kb.ldGlobal(DataType::F32, kb.add(in, off)),
        kb.immF32(float(rng.nextFloat()) + 0.25f),
        kb.cvt(DataType::F32, gid)};

    auto pickU = [&]() { return us[rng.nextBounded(us.size())]; };
    auto pickF = [&]() { return fs[rng.nextBounded(fs.size())]; };

    auto emitOne = [&]() {
        switch (rng.nextBounded(10)) {
          case 0: us.push_back(kb.add(pickU(), pickU())); break;
          case 1: us.push_back(kb.xor_(pickU(), pickU())); break;
          case 2:
            us.push_back(kb.shl(pickU(), kb.immU32(
                uint32_t(rng.nextBounded(8))))); break;
          case 3: us.push_back(kb.min_(pickU(), pickU())); break;
          case 4: fs.push_back(kb.add(pickF(), pickF())); break;
          case 5: fs.push_back(kb.mul(pickF(), pickF())); break;
          case 6:
            fs.push_back(kb.fma_(pickF(), pickF(), pickF()));
            break;
          case 7: {
            Val c = kb.cmp(CmpOp::Lt, pickU(), pickU());
            fs.push_back(kb.cmov(c, pickF(), pickF()));
            break;
          }
          case 8:
            fs.push_back(
                kb.div(pickF(), kb.max_(kb.abs_(pickF()),
                                        kb.immF32(0.5f))));
            break;
          case 9:
            us.push_back(kb.mulHi(pickU(), pickU()));
            break;
        }
    };

    unsigned body = 4 + unsigned(rng.nextBounded(8));
    for (unsigned i = 0; i < body; ++i)
        emitOne();

    // A divergent if (condition involves gid). A value defined under
    // divergent control must not escape its region (reading it from a
    // lane that skipped the write is undefined), so accumulate into a
    // pre-defined register and drop region-local values afterwards.
    if (rng.nextBounded(2)) {
        Val sink = kb.mov(pickF());
        size_t nu = us.size(), nf = fs.size();
        Val c = kb.cmp(CmpOp::Lt, kb.and_(gid, kb.immU32(7)),
                       kb.immU32(uint32_t(1 + rng.nextBounded(6))));
        kb.ifBegin(c);
        for (unsigned i = 0; i < 2 + rng.nextBounded(4); ++i)
            emitOne();
        kb.emitAluTo(Opcode::Add, sink, sink, pickF());
        if (rng.nextBounded(2)) {
            // The else path must not read then-path-only values.
            us.resize(nu);
            fs.resize(nf);
            kb.ifElse();
            for (unsigned i = 0; i < 1 + rng.nextBounded(3); ++i)
                emitOne();
            kb.emitAluTo(Opcode::Mul, sink, sink, pickF());
        }
        kb.ifEnd();
        us.resize(nu);
        fs.resize(nf);
        fs.push_back(sink);
    }

    // A bounded uniform loop with a loop-carried accumulator.
    {
        Val acc = kb.mov(pickF());
        Val i = kb.immU32(0);
        Val trip = kb.immU32(uint32_t(2 + rng.nextBounded(5)));
        Val one = kb.immU32(1);
        kb.doBegin();
        Val t = kb.mul(acc, kb.immF32(0.75f));
        kb.emitAluTo(Opcode::Add, acc, t, pickF());
        kb.emitAluTo(Opcode::Add, i, i, one);
        kb.doEnd(kb.cmp(CmpOp::Lt, i, trip));
        fs.push_back(acc);
    }

    // Optionally a divergent loop.
    if (rng.nextBounded(2)) {
        Val j = kb.and_(gid, kb.immU32(3));
        Val lim = kb.immU32(4);
        Val one = kb.immU32(1);
        Val acc = kb.mov(pickF());
        kb.doBegin();
        kb.emitAluTo(Opcode::Add, acc, acc, kb.immF32(1.5f));
        kb.emitAluTo(Opcode::Add, j, j, one);
        kb.doEnd(kb.cmp(CmpOp::Lt, j, lim));
        fs.push_back(acc);
    }

    // Combine and store.
    Val result = pickF();
    result = kb.add(result, kb.cvt(DataType::F32, pickU()));
    kb.stGlobal(result, kb.add(out, off));
    return kb.build();
}

} // namespace last::test
