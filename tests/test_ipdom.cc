/** @file CFG / post-dominator / reconvergence-stack tests. */

#include <gtest/gtest.h>

#include "helpers.hh"
#include "hsail/inst.hh"
#include "hsail/ipdom.hh"

using namespace last;
using namespace last::hsail;
using last::test::MiniWf;

TEST(IpdomCfg, IfThenBlocks)
{
    KernelBuilder kb("ifthen");
    Val c = kb.cmp(CmpOp::Lt, kb.workitemAbsId(), kb.immU32(10));
    kb.ifBegin(c);
    kb.add(kb.immU32(1), kb.immU32(2));
    kb.ifEnd();
    auto il = kb.build();
    auto blocks = buildCfg(*il.code);
    // entry+branch | then | after.
    ASSERT_EQ(blocks.size(), 3u);
    EXPECT_EQ(blocks[0].succs.size(), 2u);
    EXPECT_EQ(blocks[1].succs.size(), 1u);
    auto ipd = postDominators(blocks);
    EXPECT_EQ(ipd[0], 2u); // branch reconverges at the join block
}

TEST(IpdomCfg, IfElseReconvergesAtJoin)
{
    KernelBuilder kb("ifelse");
    Val c = kb.cmp(CmpOp::Lt, kb.workitemAbsId(), kb.immU32(10));
    kb.ifBegin(c);
    kb.add(kb.immU32(1), kb.immU32(2));
    kb.ifElse();
    kb.add(kb.immU32(3), kb.immU32(4));
    kb.ifEnd();
    Val after = kb.add(kb.immU32(5), kb.immU32(6));
    (void)after;
    auto il = kb.build();
    auto blocks = buildCfg(*il.code);
    auto ipd = postDominators(blocks);
    // Branch block's ipdom must be the join block, which starts with
    // the first instruction after the region.
    const auto &cbr =
        static_cast<const HsailInst &>(il.code->inst(blocks[0].last));
    ASSERT_TRUE(cbr.is(arch::IsBranch));
    size_t join = ipd[0];
    ASSERT_NE(join, SIZE_MAX);
    EXPECT_EQ(cbr.rpcOffset(), il.code->offsetOf(blocks[join].first));
}

TEST(IpdomCfg, LoopBackedge)
{
    KernelBuilder kb("loop");
    Val i = kb.immU32(0);
    Val one = kb.immU32(1);
    kb.doBegin();
    kb.emitAluTo(Opcode::Add, i, i, one);
    kb.doEnd(kb.cmp(CmpOp::Lt, i, kb.immU32(5)));
    auto il = kb.build();
    auto blocks = buildCfg(*il.code);
    // The backedge block must have two successors (top + fallthrough).
    bool saw_backedge = false;
    for (const auto &b : blocks) {
        const auto &inst =
            static_cast<const HsailInst &>(il.code->inst(b.last));
        if (inst.is(arch::IsBranch) && inst.op() == Opcode::CBr &&
            b.succs.size() == 2)
            saw_backedge = true;
    }
    EXPECT_TRUE(saw_backedge);
}

TEST(ReconvergenceStack, DivergentIfMasksLanes)
{
    KernelBuilder kb("div");
    Val gid = kb.workitemAbsId();
    Val r = kb.immU32(0);
    Val c = kb.cmp(CmpOp::Lt, gid, kb.immU32(20));
    kb.ifBegin(c);
    kb.emitAluTo(Opcode::Add, r, r, kb.immU32(100));
    kb.ifElse();
    kb.emitAluTo(Opcode::Add, r, r, kb.immU32(200));
    kb.ifEnd();
    kb.emitAluTo(Opcode::Add, r, r, kb.immU32(1));
    auto il = kb.build();
    MiniWf wf(*il.code);
    wf.run();
    EXPECT_EQ(wf.st.readVreg(r.reg, 0), 101u);
    EXPECT_EQ(wf.st.readVreg(r.reg, 19), 101u);
    EXPECT_EQ(wf.st.readVreg(r.reg, 20), 201u);
    EXPECT_EQ(wf.st.readVreg(r.reg, 63), 201u);
    // Stack fully unwound at the end.
    EXPECT_EQ(wf.st.rs.size(), 1u);
}

TEST(ReconvergenceStack, DivergentLoopTripCounts)
{
    // Lane l iterates (l % 4) + 1 times.
    KernelBuilder kb("divloop");
    Val gid = kb.workitemAbsId();
    Val j = kb.and_(gid, kb.immU32(3));
    Val cnt = kb.immU32(0);
    Val one = kb.immU32(1);
    kb.doBegin();
    kb.emitAluTo(Opcode::Add, cnt, cnt, one);
    kb.emitAluTo(Opcode::Add, j, j, one);
    kb.doEnd(kb.cmp(CmpOp::Lt, j, kb.immU32(4)));
    auto il = kb.build();
    MiniWf wf(*il.code);
    wf.run();
    for (unsigned lane = 0; lane < 64; ++lane)
        EXPECT_EQ(wf.st.readVreg(cnt.reg, lane), 4 - (lane % 4));
}

TEST(ReconvergenceStack, NestedDivergence)
{
    KernelBuilder kb("nested");
    Val gid = kb.workitemAbsId();
    Val r = kb.immU32(0);
    Val outer = kb.cmp(CmpOp::Lt, gid, kb.immU32(32));
    kb.ifBegin(outer);
    {
        Val inner = kb.cmp(CmpOp::Lt, gid, kb.immU32(16));
        kb.ifBegin(inner);
        kb.emitAluTo(Opcode::Add, r, r, kb.immU32(10));
        kb.ifEnd();
        kb.emitAluTo(Opcode::Add, r, r, kb.immU32(1));
    }
    kb.ifEnd();
    auto il = kb.build();
    MiniWf wf(*il.code);
    wf.run();
    EXPECT_EQ(wf.st.readVreg(r.reg, 5), 11u);
    EXPECT_EQ(wf.st.readVreg(r.reg, 20), 1u);
    EXPECT_EQ(wf.st.readVreg(r.reg, 40), 0u);
}

TEST(ReconvergenceStack, Figure3IfElseIf)
{
    // The paper's Figure 3: if / else-if with five work-items taking
    // different paths; every work-item writes 84 or 90.
    KernelBuilder kb("fig3");
    Val gid = kb.workitemAbsId();
    Val out = kb.immU64(0x8000);
    Val off = kb.cvt(DataType::U64, kb.mul(gid, kb.immU32(4)));
    Val dst = kb.add(out, off);
    Val c1 = kb.cmp(CmpOp::Lt, gid, kb.immU32(2));
    kb.ifBegin(c1);
    kb.stGlobal(kb.immU32(84), dst);
    kb.ifElse();
    {
        Val c2 = kb.cmp(CmpOp::Lt, gid, kb.immU32(4));
        kb.ifBegin(c2);
        kb.stGlobal(kb.immU32(90), dst);
        kb.ifElse();
        kb.stGlobal(kb.immU32(84), dst);
        kb.ifEnd();
    }
    kb.ifEnd();
    auto il = kb.build();
    MiniWf wf(*il.code);
    wf.run();
    EXPECT_EQ(wf.mem.read<uint32_t>(0x8000 + 0 * 4), 84u);
    EXPECT_EQ(wf.mem.read<uint32_t>(0x8000 + 1 * 4), 84u);
    EXPECT_EQ(wf.mem.read<uint32_t>(0x8000 + 2 * 4), 90u);
    EXPECT_EQ(wf.mem.read<uint32_t>(0x8000 + 3 * 4), 90u);
    EXPECT_EQ(wf.mem.read<uint32_t>(0x8000 + 4 * 4), 84u);
}

TEST(ReconvergenceStack, UniformBranchNoDivergence)
{
    KernelBuilder kb("uniform");
    Val wg = kb.workgroupId();
    Val r = kb.immU32(0);
    Val c = kb.cmp(CmpOp::Eq, wg, kb.immU32(0));
    kb.ifBegin(c);
    kb.emitAluTo(Opcode::Add, r, r, kb.immU32(7));
    kb.ifEnd();
    auto il = kb.build();
    MiniWf wf(*il.code); // wgId = 0 -> taken uniformly
    wf.run();
    EXPECT_EQ(wf.st.readVreg(r.reg, 0), 7u);
    EXPECT_EQ(wf.st.readVreg(r.reg, 63), 7u);
}
