/**
 * @file
 * Kernel-artifact cache tests: hits are pointer-identical, unsound
 * keys are loud, and a sweep with the cache on/off is statistic-
 * identical (the cache may only change wall-clock, never results).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "hsail/builder.hh"
#include "sim/artifact_cache.hh"
#include "sim/experiment.hh"

using namespace last;

namespace
{

/** A minimal kernel artifact for cache-mechanics tests (never
 *  dispatched, so it needs no sealing or finalization). */
sim::ArtifactCache::Artifact
makeTinyArtifact(const char *name)
{
    hsail::KernelBuilder kb(name);
    hsail::Val gid = kb.workitemAbsId();
    kb.stGlobal(gid, kb.immU64(0x10000));
    auto il = kb.build();
    return sim::ArtifactCache::Artifact(std::move(il.code));
}

/** Field-by-field AppResult equality with a readable failure. */
void
expectIdentical(const sim::AppResult &a, const sim::AppResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.isa, b.isa);
    EXPECT_EQ(a.verified, b.verified);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.dynInsts, b.dynInsts);
    EXPECT_EQ(a.valu, b.valu);
    EXPECT_EQ(a.salu, b.salu);
    EXPECT_EQ(a.vmem, b.vmem);
    EXPECT_EQ(a.smem, b.smem);
    EXPECT_EQ(a.lds, b.lds);
    EXPECT_EQ(a.branch, b.branch);
    EXPECT_EQ(a.waitcnt, b.waitcnt);
    EXPECT_EQ(a.misc, b.misc);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.vrfBankConflicts, b.vrfBankConflicts);
    EXPECT_DOUBLE_EQ(a.reuseMedian, b.reuseMedian);
    EXPECT_EQ(a.instFootprint, b.instFootprint);
    EXPECT_EQ(a.ibFlushes, b.ibFlushes);
    EXPECT_DOUBLE_EQ(a.readUniq, b.readUniq);
    EXPECT_DOUBLE_EQ(a.writeUniq, b.writeUniq);
    EXPECT_DOUBLE_EQ(a.vrfUniq, b.vrfUniq);
    EXPECT_EQ(a.dataFootprint, b.dataFootprint);
    EXPECT_DOUBLE_EQ(a.simdUtil, b.simdUtil);
    EXPECT_EQ(a.l1iMisses, b.l1iMisses);
    EXPECT_EQ(a.l1iHits, b.l1iHits);
    EXPECT_EQ(a.hazardViolations, b.hazardViolations);
    EXPECT_EQ(a.scoreboardStalls, b.scoreboardStalls);
    EXPECT_EQ(a.waitcntStalls, b.waitcntStalls);
    EXPECT_EQ(a.ibEmptyStalls, b.ibEmptyStalls);
    EXPECT_EQ(a.fuConflictStalls, b.fuConflictStalls);
    EXPECT_EQ(a.coalescedLines, b.coalescedLines);
    EXPECT_EQ(a.busyCycles, b.busyCycles);
    ASSERT_EQ(a.launches.size(), b.launches.size());
    for (size_t i = 0; i < a.launches.size(); ++i) {
        EXPECT_EQ(a.launches[i].kernel, b.launches[i].kernel);
        EXPECT_EQ(a.launches[i].cycles, b.launches[i].cycles);
        EXPECT_EQ(a.launches[i].instsIssued, b.launches[i].instsIssued);
    }
}

/** Restores the global cache switch even if an assertion fires. */
struct CacheSwitchGuard
{
    bool saved = sim::ArtifactCache::enabled();
    ~CacheSwitchGuard() { sim::ArtifactCache::setEnabled(saved); }
};

} // namespace

TEST(ArtifactCache, HitsArePointerIdentical)
{
    auto &cache = sim::ArtifactCache::instance();
    sim::ArtifactKey key{"__ac_test_ptr", IsaKind::HSAIL, 0.125, 0};

    unsigned builds = 0;
    auto builder = [&] {
        ++builds;
        return makeTinyArtifact("ac_ptr");
    };

    uint64_t h0 = cache.hits(), m0 = cache.misses();
    auto first = cache.getOrBuild(key, /*digest=*/0xfeedull, builder);
    auto second = cache.getOrBuild(key, 0xfeedull, builder);

    EXPECT_EQ(builds, 1u) << "second request must not rebuild";
    EXPECT_EQ(first.get(), second.get())
        << "equal keys must hand out the same immutable artifact";
    EXPECT_EQ(cache.misses(), m0 + 1);
    EXPECT_EQ(cache.hits(), h0 + 1);
}

TEST(ArtifactCache, DistinctKeysAreDistinctEntries)
{
    auto &cache = sim::ArtifactCache::instance();
    auto builder = [] { return makeTinyArtifact("ac_keys"); };

    auto a = cache.getOrBuild({"__ac_test_keys", IsaKind::HSAIL,
                               0.125, 0}, 1, builder);
    auto b = cache.getOrBuild({"__ac_test_keys", IsaKind::GCN3,
                               0.125, 0}, 1, builder);
    auto c = cache.getOrBuild({"__ac_test_keys", IsaKind::HSAIL,
                               0.25, 0}, 1, builder);
    auto d = cache.getOrBuild({"__ac_test_keys", IsaKind::HSAIL,
                               0.125, 1}, 1, builder);
    EXPECT_NE(a.get(), b.get());
    EXPECT_NE(a.get(), c.get());
    EXPECT_NE(a.get(), d.get());
}

TEST(ArtifactCache, DigestMismatchIsLoud)
{
    auto &cache = sim::ArtifactCache::instance();
    sim::ArtifactKey key{"__ac_test_digest", IsaKind::HSAIL, 0.125, 0};
    auto builder = [] { return makeTinyArtifact("ac_digest"); };

    cache.getOrBuild(key, /*digest=*/42, builder);
    // Same key, different build input: an unsound key must panic, not
    // silently reuse the wrong artifact.
    EXPECT_THROW(cache.getOrBuild(key, 43, builder), InvariantError);
}

TEST(ArtifactCache, RepeatedRunsHitTheCache)
{
    auto &cache = sim::ArtifactCache::instance();
    ASSERT_TRUE(sim::ArtifactCache::enabled());

    // A scale no other test uses, so both runs' keys are this test's.
    workloads::WorkloadScale scale{0.375};
    auto r1 = sim::runApp("VecAdd", IsaKind::GCN3, GpuConfig{},
                          scale);
    uint64_t h1 = cache.hits(), m1 = cache.misses();
    auto r2 = sim::runApp("VecAdd", IsaKind::GCN3, GpuConfig{},
                          scale);
    EXPECT_GT(cache.hits(), h1) << "identical rerun must hit";
    EXPECT_EQ(cache.misses(), m1) << "identical rerun must not rebuild";
    expectIdentical(r1, r2);
}

TEST(ArtifactCache, CacheOnOffYieldsIdenticalResults)
{
    CacheSwitchGuard guard;
    workloads::WorkloadScale scale{0.375};

    sim::ArtifactCache::setEnabled(true);
    auto hsailOn = sim::runApp("VecAdd", IsaKind::HSAIL,
                               GpuConfig{}, scale);
    auto gcnOn = sim::runApp("VecAdd", IsaKind::GCN3, GpuConfig{},
                             scale);

    sim::ArtifactCache::setEnabled(false);
    auto hsailOff = sim::runApp("VecAdd", IsaKind::HSAIL,
                                GpuConfig{}, scale);
    auto gcnOff = sim::runApp("VecAdd", IsaKind::GCN3, GpuConfig{},
                              scale);

    expectIdentical(hsailOn, hsailOff);
    expectIdentical(gcnOn, gcnOff);
}
