/**
 * @file
 * Shared test utilities: a bare functional executor that runs a kernel
 * on a single wavefront without the timing model (for ISA semantics
 * tests), and a random IL kernel generator (for differential property
 * tests).
 */

#ifndef LAST_TESTS_HELPERS_HH
#define LAST_TESTS_HELPERS_HH

#include <memory>

#include "arch/kernel_code.hh"
#include "arch/wf_state.hh"
#include "common/random.hh"
#include "hsail/builder.hh"
#include "memory/functional_memory.hh"
#include "memory/lds.hh"

namespace last::test
{

/** A one-wavefront functional execution environment. */
struct MiniWf
{
    mem::FunctionalMemory mem;
    mem::LdsBlock lds{4096};
    arch::WfState st;

    explicit MiniWf(const arch::KernelCode &code, unsigned wg_size = 64,
                    unsigned grid = 64, unsigned wg_id = 0)
    {
        st.isa = code.isa();
        st.code = &code;
        st.wgId = wg_id;
        st.wgSize = wg_size;
        st.gridSize = grid;
        st.wfIdInWg = 0;
        st.firstWorkitem = wg_id * wg_size;
        st.memory = &mem;
        st.lds = &lds;
        st.vregs.assign(std::max<unsigned>(code.vregsUsed, 1),
                        arch::LaneVec{});
        st.initLaunch(~0ull);
    }

    /** Execute to completion (functional; no timing). Returns the
     *  number of dynamic instructions. */
    uint64_t
    run(uint64_t max_insts = 1000000)
    {
        uint64_t n = 0;
        const arch::KernelCode &code = *st.code;
        while (!st.done && n < max_insts) {
            size_t idx = code.indexAt(st.pc);
            st.pendingAccess.reset();
            st.atBarrier = false;
            code.inst(idx).execute(st);
            ++n;
            if (st.isa == IsaKind::HSAIL) {
                st.rs.back().pc = st.nextPc;
                while (st.rs.size() > 1 &&
                       st.rs.back().pc == st.rs.back().rpc)
                    st.rs.pop_back();
                st.pc = st.rs.back().pc;
            } else {
                st.pc = st.nextPc;
            }
        }
        return n;
    }
};

/**
 * Generate a random-but-valid IL kernel: mixed u32/f32 arithmetic,
 * conditional moves, divergent and uniform ifs, a bounded loop, loads
 * from an input buffer, one store per work-item to out[gid].
 * kernargs: [0]=in (u64), [8]=out (u64).
 */
hsail::IlKernel randomKernel(uint64_t seed);

} // namespace last::test

#endif // LAST_TESTS_HELPERS_HH
