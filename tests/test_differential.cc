/**
 * @file
 * The cross-ISA differential property suite: for randomized kernels
 * and for every Table 5 workload, executing the same source at the
 * HSAIL level and at both machine levels (GCN3, PTXL) must produce
 * byte-identical results — and neither machine-level run may trip the
 * hazard probe (the finalizer's software dependency management and
 * the PTXL hardware scoreboard must both be complete).
 */

#include <gtest/gtest.h>

#include "finalizer/backend.hh"
#include "finalizer/finalizer.hh"
#include "finalizer/regalloc.hh"
#include "helpers.hh"
#include "runtime/runtime.hh"
#include "sim/experiment.hh"
#include "sim/parallel.hh"

using namespace last;

namespace
{

/** Run a random kernel end-to-end on a full Runtime at one ISA and
 *  return the output buffer. */
std::vector<uint32_t>
runRandom(uint64_t seed, IsaKind isa, uint64_t *hazards = nullptr)
{
    runtime::Runtime rt;
    auto il = last::test::randomKernel(seed);
    finalizer::compactIlRegisters(il);
    std::unique_ptr<arch::KernelCode> machine;
    arch::KernelCode *code = il.code.get();
    if (isa != IsaKind::HSAIL) {
        machine = finalizer::finalize(il, isa, rt.config());
        code = machine.get();
    }

    const unsigned grid = 512;
    Addr in = rt.allocGlobal(grid * 4);
    Addr out = rt.allocGlobal(grid * 4);
    Rng rng(seed * 77 + 5);
    std::vector<uint32_t> data(grid);
    for (auto &d : data)
        d = uint32_t(rng.next());
    rt.writeGlobal(in, data.data(), data.size() * 4);

    struct Args
    {
        uint64_t in, out;
    } args{in, out};
    rt.dispatch(*code, grid, 256, &args, sizeof(args));

    if (hazards)
        *hazards = uint64_t(rt.gpu().sumCuStat("hazardViolations"));
    std::vector<uint32_t> got(grid);
    rt.readGlobal(out, got.data(), got.size() * 4);
    return got;
}

} // namespace

class RandomKernelDifferential
    : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomKernelDifferential, IsasProduceIdenticalResults)
{
    uint64_t seed = GetParam();
    uint64_t gcn3Hazards = 0, ptxlHazards = 0;
    // The three ISA-level runs are independent; overlap them on the
    // parallel driver's worker pool.
    std::vector<uint32_t> hsail, gcn3, ptxl;
    sim::parallelInvoke(
        {[&] { hsail = runRandom(seed, IsaKind::HSAIL); },
         [&] { gcn3 = runRandom(seed, IsaKind::GCN3, &gcn3Hazards); },
         [&] { ptxl = runRandom(seed, IsaKind::PTXL, &ptxlHazards); }});
    EXPECT_EQ(hsail, gcn3) << "seed " << seed;
    EXPECT_EQ(hsail, ptxl) << "seed " << seed;
    EXPECT_EQ(gcn3Hazards, 0u)
        << "finalizer dependency management incomplete for seed "
        << seed;
    EXPECT_EQ(ptxlHazards, 0u)
        << "PTXL scoreboard let a not-ready register be read for seed "
        << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomKernelDifferential,
                         ::testing::Range<uint64_t>(1, 33));

struct WorkloadCase
{
    const char *name;
};

class WorkloadDifferential
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(WorkloadDifferential, VerifiesAndMatchesAcrossIsas)
{
    workloads::WorkloadScale scale{0.5};
    std::vector<sim::RunSpec> specs;
    for (IsaKind isa : AllIsas)
        specs.push_back({GetParam(), isa, GpuConfig{}, scale});
    auto rs = sim::runMany(specs);
    const sim::AppResult &h = rs[0], &g = rs[1], &p = rs[2];
    EXPECT_TRUE(h.verified) << GetParam() << " HSAIL";
    EXPECT_TRUE(g.verified) << GetParam() << " GCN3";
    EXPECT_TRUE(p.verified) << GetParam() << " PTXL";
    EXPECT_EQ(h.digest, g.digest) << GetParam();
    EXPECT_EQ(h.digest, p.digest) << GetParam();
    EXPECT_EQ(g.hazardViolations, 0u) << GetParam();
    EXPECT_EQ(p.hazardViolations, 0u) << GetParam();
    // The abstraction gap the paper quantifies: more dynamic
    // instructions at either machine-ISA level...
    EXPECT_GE(g.dynInsts, h.dynInsts) << GetParam();
    EXPECT_GE(p.dynInsts, h.dynInsts) << GetParam();
    // ...scalar work only under GCN3 (PTXL has no scalar pipeline,
    // only constant-cache kernarg traffic)...
    EXPECT_EQ(h.salu, 0u);
    EXPECT_EQ(h.smem, 0u);
    EXPECT_GT(g.salu, 0u);
    EXPECT_EQ(p.salu, 0u);
    // ...and software dependency management only under GCN3: the PTXL
    // stream carries no waitcnt-class instructions and never stalls on
    // one, it pays fixed-latency scoreboard stalls instead.
    EXPECT_EQ(h.waitcnt, 0u);
    EXPECT_GT(g.waitcnt, 0u);
    EXPECT_EQ(p.waitcnt, 0u);
    EXPECT_EQ(p.waitcntStalls, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Table5, WorkloadDifferential,
    ::testing::Values("ArrayBW", "BitonicSort", "CoMD", "FFT", "HPGMG",
                      "MD", "SNAP", "SpMV", "XSBench"));

// LULESH runs long; keep it in a single dedicated case at small scale.
TEST(WorkloadDifferentialLulesh, VerifiesAndMatches)
{
    workloads::WorkloadScale scale{0.25};
    std::vector<sim::RunSpec> specs;
    for (IsaKind isa : AllIsas)
        specs.push_back({"LULESH", isa, GpuConfig{}, scale});
    auto rs = sim::runMany(specs);
    const sim::AppResult &h = rs[0], &g = rs[1], &p = rs[2];
    EXPECT_TRUE(h.verified);
    EXPECT_TRUE(g.verified);
    EXPECT_TRUE(p.verified);
    EXPECT_EQ(h.digest, g.digest);
    EXPECT_EQ(h.digest, p.digest);
    EXPECT_EQ(g.hazardViolations, 0u);
    EXPECT_EQ(p.hazardViolations, 0u);
    // The Table 6 asymmetry: per-launch private arenas inflate the
    // HSAIL data footprint relative to GCN3, whose register allocator
    // folds the spill traffic into the physical VRF budget. PTXL
    // keeps the IL's register set 1:1 (no repacking), so it inherits
    // the arenas wholesale — its footprint matches the IL exactly,
    // and the GCN3-only reduction is itself a cross-vendor pitfall.
    EXPECT_GT(h.dataFootprint, 2 * g.dataFootprint);
    EXPECT_EQ(p.dataFootprint, h.dataFootprint);
}
