/**
 * @file
 * The cross-ISA differential property suite: for randomized kernels
 * and for every Table 5 workload, executing the same source at the
 * HSAIL level and at the GCN3 level must produce byte-identical
 * results — and the GCN3 run must never trip the hazard probe (the
 * finalizer's software dependency management must be complete).
 */

#include <gtest/gtest.h>

#include "finalizer/finalizer.hh"
#include "finalizer/regalloc.hh"
#include "helpers.hh"
#include "runtime/runtime.hh"
#include "sim/experiment.hh"
#include "sim/parallel.hh"

using namespace last;

namespace
{

/** Run a random kernel end-to-end on a full Runtime at one ISA and
 *  return the output buffer. */
std::vector<uint32_t>
runRandom(uint64_t seed, IsaKind isa, uint64_t *hazards = nullptr)
{
    runtime::Runtime rt;
    auto il = last::test::randomKernel(seed);
    finalizer::compactIlRegisters(il);
    std::unique_ptr<arch::KernelCode> gcn;
    arch::KernelCode *code = il.code.get();
    if (isa == IsaKind::GCN3) {
        gcn = finalizer::finalize(il, rt.config());
        code = gcn.get();
    }

    const unsigned grid = 512;
    Addr in = rt.allocGlobal(grid * 4);
    Addr out = rt.allocGlobal(grid * 4);
    Rng rng(seed * 77 + 5);
    std::vector<uint32_t> data(grid);
    for (auto &d : data)
        d = uint32_t(rng.next());
    rt.writeGlobal(in, data.data(), data.size() * 4);

    struct Args
    {
        uint64_t in, out;
    } args{in, out};
    rt.dispatch(*code, grid, 256, &args, sizeof(args));

    if (hazards)
        *hazards = uint64_t(rt.gpu().sumCuStat("hazardViolations"));
    std::vector<uint32_t> got(grid);
    rt.readGlobal(out, got.data(), got.size() * 4);
    return got;
}

} // namespace

class RandomKernelDifferential
    : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomKernelDifferential, IsasProduceIdenticalResults)
{
    uint64_t seed = GetParam();
    uint64_t hazards = 0;
    // The two ISA-level runs are independent; overlap them on the
    // parallel driver's worker pool.
    std::vector<uint32_t> hsail, gcn3;
    sim::parallelInvoke(
        {[&] { hsail = runRandom(seed, IsaKind::HSAIL); },
         [&] { gcn3 = runRandom(seed, IsaKind::GCN3, &hazards); }});
    EXPECT_EQ(hsail, gcn3) << "seed " << seed;
    EXPECT_EQ(hazards, 0u)
        << "finalizer dependency management incomplete for seed "
        << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomKernelDifferential,
                         ::testing::Range<uint64_t>(1, 33));

struct WorkloadCase
{
    const char *name;
};

class WorkloadDifferential
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(WorkloadDifferential, VerifiesAndMatchesAcrossIsas)
{
    workloads::WorkloadScale scale{0.5};
    auto [h, g] = sim::runBoth(GetParam(), GpuConfig{}, scale);
    EXPECT_TRUE(h.verified) << GetParam() << " HSAIL";
    EXPECT_TRUE(g.verified) << GetParam() << " GCN3";
    EXPECT_EQ(h.digest, g.digest) << GetParam();
    EXPECT_EQ(g.hazardViolations, 0u) << GetParam();
    // The abstraction gap the paper quantifies: more dynamic
    // instructions at the machine-ISA level...
    EXPECT_GE(g.dynInsts, h.dynInsts) << GetParam();
    // ...but identical data footprints unless special segments are
    // involved (FFT and LULESH), and scalar work only under GCN3.
    EXPECT_EQ(h.salu, 0u);
    EXPECT_EQ(h.smem, 0u);
    EXPECT_EQ(h.waitcnt, 0u);
    EXPECT_GT(g.salu, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Table5, WorkloadDifferential,
    ::testing::Values("ArrayBW", "BitonicSort", "CoMD", "FFT", "HPGMG",
                      "MD", "SNAP", "SpMV", "XSBench"));

// LULESH runs long; keep it in a single dedicated case at small scale.
TEST(WorkloadDifferentialLulesh, VerifiesAndMatches)
{
    workloads::WorkloadScale scale{0.25};
    auto [h, g] = sim::runBoth("LULESH", GpuConfig{}, scale);
    EXPECT_TRUE(h.verified);
    EXPECT_TRUE(g.verified);
    EXPECT_EQ(h.digest, g.digest);
    EXPECT_EQ(g.hazardViolations, 0u);
    // The Table 6 asymmetry: per-launch private arenas inflate the
    // HSAIL data footprint.
    EXPECT_GT(h.dataFootprint, 2 * g.dataFootprint);
}
