/** @file CU timing-model tests (through the full runtime stack). */

#include <gtest/gtest.h>

#include "cu/wavefront.hh"
#include "finalizer/finalizer.hh"
#include "finalizer/regalloc.hh"
#include "helpers.hh"
#include "runtime/runtime.hh"

using namespace last;
using namespace last::hsail;

namespace
{

/** Dispatch a builder-made kernel at an ISA level; returns a live
 *  Runtime for stats inspection. */
struct RunResult
{
    std::unique_ptr<runtime::Runtime> rt;
    IlKernel il;
    std::unique_ptr<arch::KernelCode> gcn;
    Cycle cycles = 0;

    double
    cu(const char *stat) const
    {
        return rt->gpu().sumCuStat(stat);
    }
};

RunResult
runKernel(IlKernel &&il, IsaKind isa, unsigned grid, unsigned wg,
          const void *args, size_t arg_bytes)
{
    RunResult r;
    r.rt = std::make_unique<runtime::Runtime>();
    r.il = std::move(il);
    finalizer::compactIlRegisters(r.il);
    arch::KernelCode *code = r.il.code.get();
    if (isa == IsaKind::GCN3) {
        r.gcn = finalizer::finalize(r.il, r.rt->config());
        code = r.gcn.get();
    }
    r.cycles = r.rt->dispatch(*code, grid, wg, args, arg_bytes);
    return r;
}

IlKernel
storeGidKernel(Addr out)
{
    KernelBuilder kb("gid");
    Val gid = kb.workitemAbsId();
    Val off = kb.cvt(DataType::U64, kb.mul(gid, kb.immU32(4)));
    kb.stGlobal(gid, kb.add(kb.immU64(out), off));
    return kb.build();
}

} // namespace

TEST(CuTiming, PartialWavefrontMasks)
{
    // 320-wide grid with wg=256: the second workgroup has one full WF
    // and the grid is not a WF multiple... use 256+64 to keep wgSize
    // aligned and exercise a partially filled last workgroup.
    for (auto isa : {IsaKind::HSAIL, IsaKind::GCN3}) {
        auto r = runKernel(storeGidKernel(0x100000), isa, 320, 256,
                           nullptr, 0);
        for (unsigned i = 0; i < 320; ++i)
            EXPECT_EQ(r.rt->readGlobal<uint32_t>(0x100000 + 4 * i), i)
                << isaName(isa) << " idx " << i;
        // Nothing past the grid end was written.
        EXPECT_EQ(r.rt->readGlobal<uint32_t>(0x100000 + 4 * 320), 0u);
    }
}

TEST(CuTiming, InstructionCountsClassified)
{
    auto r = runKernel(storeGidKernel(0x100000), IsaKind::GCN3, 256,
                       256, nullptr, 0);
    double total = r.cu("dynInsts");
    double classified = r.cu("valuInsts") + r.cu("saluInsts") +
                        r.cu("vmemInsts") + r.cu("smemInsts") +
                        r.cu("ldsInsts") + r.cu("branchInsts") +
                        r.cu("waitcntInsts") + r.cu("miscInsts");
    EXPECT_GT(total, 0.0);
    EXPECT_DOUBLE_EQ(total, classified);
}

TEST(CuTiming, LoopCausesIbFlushesOnBothIsas)
{
    auto makeLoop = []() {
        KernelBuilder kb("loop");
        Val i = kb.immU32(0);
        Val one = kb.immU32(1);
        Val acc = kb.immF32(0.0f);
        kb.doBegin();
        kb.emitAluTo(Opcode::Add, acc, acc, kb.immF32(1.0f));
        kb.emitAluTo(Opcode::Add, i, i, one);
        kb.doEnd(kb.cmp(CmpOp::Lt, i, kb.immU32(16)));
        kb.stGlobal(acc, kb.immU64(0x1000));
        return kb.build();
    };
    auto h = runKernel(makeLoop(), IsaKind::HSAIL, 64, 64, nullptr, 0);
    auto g = runKernel(makeLoop(), IsaKind::GCN3, 64, 64, nullptr, 0);
    // 15 taken backedges each.
    EXPECT_GE(h.cu("ibFlushes"), 15.0);
    EXPECT_GE(g.cu("ibFlushes"), 15.0);
}

TEST(CuTiming, DivergenceFlushesOnlyHsail)
{
    // A divergent if-else is straight-line (predicated) under GCN3 but
    // costs reconvergence-stack jumps under HSAIL — Figure 9's
    // mechanism.
    auto makeDiv = []() {
        KernelBuilder kb("div");
        Val gid = kb.workitemAbsId();
        Val r = kb.immU32(0);
        Val c = kb.cmp(CmpOp::Lt, kb.and_(gid, kb.immU32(1)),
                       kb.immU32(1));
        kb.ifBegin(c);
        kb.emitAluTo(Opcode::Add, r, r, kb.immU32(84));
        kb.ifElse();
        kb.emitAluTo(Opcode::Add, r, r, kb.immU32(90));
        kb.ifEnd();
        Val off = kb.cvt(DataType::U64, kb.mul(gid, kb.immU32(4)));
        kb.stGlobal(r, kb.add(kb.immU64(0x4000), off));
        return kb.build();
    };
    auto h = runKernel(makeDiv(), IsaKind::HSAIL, 64, 64, nullptr, 0);
    auto g = runKernel(makeDiv(), IsaKind::GCN3, 64, 64, nullptr, 0);
    EXPECT_GT(h.cu("ibFlushes"), g.cu("ibFlushes"));
    EXPECT_EQ(g.cu("ibFlushes"), 0.0); // no taken branches at all
    // Functional results agree.
    for (unsigned i = 0; i < 64; ++i) {
        uint32_t want = (i & 1) ? 90 : 84;
        EXPECT_EQ(h.rt->readGlobal<uint32_t>(0x4000 + 4 * i), want);
        EXPECT_EQ(g.rt->readGlobal<uint32_t>(0x4000 + 4 * i), want);
    }
}

TEST(CuTiming, BarrierSynchronizesWorkgroup)
{
    // Work-item i writes LDS[i]; after the barrier it reads its
    // neighbour's slot from ANOTHER wavefront of the same workgroup.
    auto makeBar = []() {
        KernelBuilder kb("bar");
        kb.setLdsBytesPerWg(1024);
        Val lid = kb.workitemId();
        kb.stGroup(lid, kb.mul(lid, kb.immU32(4)));
        kb.barrier();
        // Read slot (lid + 64) % 256: always another WF's slot.
        Val peer = kb.and_(kb.add(lid, kb.immU32(64)),
                           kb.immU32(255));
        Val v = kb.ldGroup(DataType::U32, kb.mul(peer, kb.immU32(4)));
        Val off = kb.cvt(DataType::U64,
                         kb.mul(kb.workitemAbsId(), kb.immU32(4)));
        kb.stGlobal(v, kb.add(kb.immU64(0x8000), off));
        return kb.build();
    };
    for (auto isa : {IsaKind::HSAIL, IsaKind::GCN3}) {
        auto r = runKernel(makeBar(), isa, 256, 256, nullptr, 0);
        for (unsigned i = 0; i < 256; ++i)
            EXPECT_EQ(r.rt->readGlobal<uint32_t>(0x8000 + 4 * i),
                      (i + 64) & 255)
                << isaName(isa) << " @" << i;
    }
}

TEST(CuTiming, ScoreboardOnlyForHsail)
{
    auto h = runKernel(storeGidKernel(0x1000), IsaKind::HSAIL, 512,
                       256, nullptr, 0);
    auto g = runKernel(storeGidKernel(0x1000), IsaKind::GCN3, 512, 256,
                       nullptr, 0);
    EXPECT_EQ(h.cu("waitcntStalls"), 0.0);
    EXPECT_EQ(g.cu("scoreboardStalls"), 0.0);
    EXPECT_GT(g.cu("waitcntInsts"), 0.0);
    EXPECT_EQ(h.cu("hazardViolations"), 0.0);
    EXPECT_EQ(g.cu("hazardViolations"), 0.0);
}

TEST(CuTiming, SimdUtilizationTracksActiveLanes)
{
    // Half the lanes take a heavy divergent path.
    auto makeHalf = []() {
        KernelBuilder kb("half");
        Val gid = kb.workitemAbsId();
        Val c = kb.cmp(CmpOp::Lt, kb.and_(gid, kb.immU32(63)),
                       kb.immU32(32));
        Val acc = kb.immF32(0.0f);
        kb.ifBegin(c);
        for (int i = 0; i < 32; ++i)
            kb.emitAluTo(Opcode::Add, acc, acc, kb.immF32(1.0f));
        kb.ifEnd();
        Val off = kb.cvt(DataType::U64, kb.mul(gid, kb.immU32(4)));
        kb.stGlobal(acc, kb.add(kb.immU64(0x9000), off));
        return kb.build();
    };
    auto h = runKernel(makeHalf(), IsaKind::HSAIL, 256, 256, nullptr,
                       0);
    auto g = runKernel(makeHalf(), IsaKind::GCN3, 256, 256, nullptr,
                       0);
    // Utilization well below 1 and close across ISAs (Table 6).
    auto util = [](const RunResult &r) {
        auto &cu0 = r.rt->gpu().computeUnit(0);
        double s = 0, n = 0;
        for (unsigned c = 0; c < r.rt->gpu().numCus(); ++c) {
            auto &cu = r.rt->gpu().computeUnit(c);
            s += cu.valuUtilization.value() *
                 double(cu.valuUtilization.samples());
            n += double(cu.valuUtilization.samples());
        }
        (void)cu0;
        return n ? s / n : 0.0;
    };
    double hu = util(h), gu = util(g);
    EXPECT_LT(hu, 0.9);
    EXPECT_LT(gu, 0.9);
    EXPECT_NEAR(hu, gu, 0.15);
}

TEST(CuTiming, InstFootprintDiffersByEncoding)
{
    auto h = runKernel(storeGidKernel(0x1000), IsaKind::HSAIL, 64, 64,
                       nullptr, 0);
    auto g = runKernel(storeGidKernel(0x1000), IsaKind::GCN3, 64, 64,
                       nullptr, 0);
    EXPECT_GT(h.rt->instFootprintBytes(), 0u);
    EXPECT_GT(g.rt->instFootprintBytes(),
              h.rt->instFootprintBytes());
}

TEST(CuTiming, OldestFirstTieBreakIsExplicit)
{
    // The issue-stage age order must be bit-stable: dispatch sequence
    // first, then slot index as a deterministic tie-break (never
    // implementation-defined sort behaviour).
    cu::Wavefront older(/*slot=*/7, /*simd=*/0);
    cu::Wavefront newer(/*slot=*/1, /*simd=*/0);
    older.dispatchSeq = 10;
    newer.dispatchSeq = 20;
    EXPECT_TRUE(cu::Wavefront::olderThan(older, newer));
    EXPECT_FALSE(cu::Wavefront::olderThan(newer, older));

    // Equal dispatchSeq: the lower slot wins, irreflexively.
    cu::Wavefront slot2(2, 0), slot5(5, 0);
    slot2.dispatchSeq = slot5.dispatchSeq = 42;
    EXPECT_TRUE(cu::Wavefront::olderThan(slot2, slot5));
    EXPECT_FALSE(cu::Wavefront::olderThan(slot5, slot2));
    EXPECT_FALSE(cu::Wavefront::olderThan(slot2, slot2));
}
