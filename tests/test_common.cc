/** @file Unit tests for the common substrate. */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/bitfield.hh"
#include "common/config.hh"
#include "common/event_queue.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"

using namespace last;

TEST(Bitfield, BitsExtract)
{
    EXPECT_EQ(bits(0xdeadbeef, 7, 0), 0xefu);
    EXPECT_EQ(bits(0xdeadbeef, 31, 28), 0xdu);
    EXPECT_EQ(bits(0xff, 3, 1), 0x7u);
    EXPECT_EQ(bits(~0ull, 63, 0), ~0ull);
}

TEST(Bitfield, InsertBits)
{
    EXPECT_EQ(insertBits(0, 7, 4, 0xa), 0xa0u);
    EXPECT_EQ(insertBits(0xffff, 7, 4, 0), 0xff0fu);
}

TEST(Bitfield, SignExtend)
{
    EXPECT_EQ(sext(0x80, 8), -128);
    EXPECT_EQ(sext(0x7f, 8), 127);
    EXPECT_EQ(sext(0xffff, 16), -1);
}

TEST(Bitfield, PowerOfTwoHelpers)
{
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(48));
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(popCount(0xffull), 8u);
    EXPECT_EQ(findLsb(0x8ull), 3u);
}

TEST(EventQueue, FiresInOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(5); });
    eq.schedule(2, [&] { order.push_back(2); });
    eq.schedule(2, [&] { order.push_back(20); });
    for (int i = 0; i < 10; ++i)
        eq.tick();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 2);
    EXPECT_EQ(order[1], 20); // FIFO within a cycle
    EXPECT_EQ(order[2], 5);
}

TEST(EventQueue, IntraCycleChains)
{
    EventQueue eq;
    int hits = 0;
    eq.schedule(3, [&] {
        ++hits;
        eq.schedule(3, [&] { ++hits; });
    });
    while (!eq.empty())
        eq.tick();
    EXPECT_EQ(hits, 2);
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.tick();
    eq.tick();
    EXPECT_THROW(eq.schedule(0, [] {}), std::runtime_error);
}

TEST(EventQueue, FastForwardSkipsIdle)
{
    EventQueue eq;
    bool fired = false;
    eq.schedule(1000, [&] { fired = true; });
    eq.fastForward();
    EXPECT_TRUE(fired);
    EXPECT_GE(eq.now(), 1000u);
}

TEST(Stats, ScalarAccumulates)
{
    stats::Group root("root");
    stats::Scalar s(&root, "s", "test");
    s += 2.5;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, AverageWeights)
{
    stats::Group root("root");
    stats::Average a(&root, "a", "test");
    a.sample(1.0);
    a.sample(0.0);
    EXPECT_DOUBLE_EQ(a.value(), 0.5);
    a.sample(1.0, 2.0);
    EXPECT_DOUBLE_EQ(a.value(), 0.75);
}

TEST(Stats, HistogramMedian)
{
    stats::Group root("root");
    stats::Histogram h(&root, "h", "test");
    for (int i = 0; i < 100; ++i)
        h.sample(4);
    EXPECT_NEAR(h.median(), 4.0, 3.0); // bucketed approximation
    EXPECT_EQ(h.samples(), 100u);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
}

TEST(Stats, HistogramMedianSkewed)
{
    stats::Group root("root");
    stats::Histogram h(&root, "h", "test");
    for (int i = 0; i < 90; ++i)
        h.sample(1);
    for (int i = 0; i < 10; ++i)
        h.sample(1000);
    EXPECT_LT(h.median(), 3.0);
}

TEST(Stats, HistogramMerge)
{
    stats::Group root("root");
    stats::Histogram a(&root, "a", ""), b(&root, "b", "");
    a.sample(2, 50);
    b.sample(100, 50);
    a.merge(b);
    EXPECT_EQ(a.samples(), 100u);
    EXPECT_EQ(a.maxSample(), 100u);
}

TEST(Stats, GroupFindAndSum)
{
    stats::Group root("root");
    stats::Group child("child", &root);
    stats::Scalar s1(&root, "x", "");
    stats::Scalar s2(&child, "x", "");
    s1 += 1;
    s2 += 2;
    EXPECT_EQ(root.find("x"), &s1);
    EXPECT_EQ(root.find("child.x"), &s2);
    EXPECT_EQ(root.find("child.missing"), nullptr);
    EXPECT_DOUBLE_EQ(root.sumOver("x"), 3.0);
}

TEST(Stats, PrintProducesLines)
{
    stats::Group root("sim");
    stats::Scalar s(&root, "count", "a counter");
    s += 7;
    std::ostringstream os;
    root.printStats(os);
    EXPECT_NE(os.str().find("sim.count 7"), std::string::npos);
}

TEST(Config, Table4Defaults)
{
    GpuConfig cfg;
    EXPECT_EQ(cfg.numCus, 8u);
    EXPECT_EQ(cfg.simdPerCu, 4u);
    EXPECT_EQ(cfg.wfSlotsPerCu, 40u);
    EXPECT_EQ(cfg.wavefrontSize, 64u);
    EXPECT_EQ(cfg.vrfEntriesPerCu, 2048u);
    EXPECT_EQ(cfg.srfEntriesPerCu, 800u);
    EXPECT_EQ(cfg.l1d.sizeBytes, 16u * 1024);
    EXPECT_EQ(cfg.l1d.associativity, 0u); // fully associative
    EXPECT_EQ(cfg.l2.sizeBytes, 512u * 1024);
    EXPECT_EQ(cfg.dramChannels, 32u);
    EXPECT_NE(cfg.summary().find("8 CUs"), std::string::npos);
}

TEST(Logging, PanicAndFatalThrow)
{
    EXPECT_THROW(panic("boom %d", 42), std::runtime_error);
    EXPECT_THROW(fatal("user error"), std::runtime_error);
}

TEST(Logging, PanicThrowsInvariantErrorWithContext)
{
    try {
        panic("invariant %s broke at %d", "xyz", 7);
        FAIL() << "expected InvariantError";
    } catch (const InvariantError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Invariant);
        EXPECT_STREQ(e.kindName(), "panic");
        EXPECT_EQ(e.message(), "invariant xyz broke at 7");
        EXPECT_NE(e.file().find("test_common.cc"), std::string::npos);
        EXPECT_GT(e.line(), 0);
        EXPECT_NE(std::string(e.what()).find("invariant xyz broke"),
                  std::string::npos);
    }
}

TEST(Logging, FatalThrowsConfigError)
{
    try {
        fatal("bad knob %u", 99u);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Config);
        EXPECT_STREQ(e.kindName(), "fatal");
        EXPECT_EQ(e.message(), "bad knob 99");
    }
}

TEST(Logging, ConditionMacrosEvaluateOnceAndOnlyFireWhenTrue)
{
    int evals = 0;
    panic_if(++evals > 100, "must not fire");
    EXPECT_EQ(evals, 1); // condition evaluated exactly once
    fatal_if(++evals > 100, "must not fire");
    EXPECT_EQ(evals, 2);
    EXPECT_THROW(panic_if(++evals == 3, "fires"), InvariantError);
    EXPECT_EQ(evals, 3);
    EXPECT_THROW(fatal_if(++evals == 4, "fires"), ConfigError);
    EXPECT_EQ(evals, 4);
}

TEST(Logging, WarnAndInformFormatThroughHook)
{
    std::vector<std::pair<std::string, std::string>> captured;
    setLogHook([&](const char *level, const std::string &msg) {
        captured.emplace_back(level, msg);
    });
    warn("approximated %s by %d%%", "latency", 5);
    inform("loaded %u kernels", 3u);
    setLogHook(nullptr);
    ASSERT_EQ(captured.size(), 2u);
    EXPECT_EQ(captured[0].first, "warn");
    EXPECT_EQ(captured[0].second, "approximated latency by 5%");
    EXPECT_EQ(captured[1].first, "info");
    EXPECT_EQ(captured[1].second, "loaded 3 kernels");
    // Hook uninstalled: messages go back to the streams, not `captured`.
    warn("to stderr");
    EXPECT_EQ(captured.size(), 2u);
}

TEST(Logging, ErrorKindNamesAreStable)
{
    EXPECT_STREQ(errorKindName(ErrorKind::Invariant), "panic");
    EXPECT_STREQ(errorKindName(ErrorKind::Config), "fatal");
    EXPECT_STREQ(errorKindName(ErrorKind::Memory), "memory error");
    EXPECT_STREQ(errorKindName(ErrorKind::Deadlock), "deadlock");
    EXPECT_STREQ(errorKindName(ErrorKind::Mismatch), "isa mismatch");
}

TEST(Logging, ErrorModeDefaultsToThrow)
{
    EXPECT_EQ(errorMode(), ErrorMode::Throw);
}

TEST(LoggingDeathTest, AbortModeRestoresClassicCliBehaviour)
{
    // Death tests fork, so flipping the mode inside the statement
    // never affects this process.
    EXPECT_DEATH(
        {
            setErrorMode(ErrorMode::Abort);
            panic("hard stop");
        },
        "hard stop");
    EXPECT_EXIT(
        {
            setErrorMode(ErrorMode::Abort);
            fatal("unsupportable");
        },
        ::testing::ExitedWithCode(1), "unsupportable");
}

TEST(Random, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, BoundedInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.nextBounded(17), 17u);
    EXPECT_EQ(r.nextBounded(0), 0u);
}

TEST(Random, FloatRanges)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        float f = r.nextFloat();
        EXPECT_GE(f, 0.0f);
        EXPECT_LT(f, 1.0f);
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}
