/**
 * @file
 * Tests for the crash-safe sweep orchestration layer (sim/orchestrate):
 *  - BackoffPolicy is a pure, deterministic capped exponential with
 *    bounded jitter (table-driven, no wall-clock);
 *  - classifyExit maps real wait(2) statuses to the supervisor's exit
 *    classes, including the deadline-kill override;
 *  - the journal appends durably, loads back in order, tolerates a
 *    torn or unparseable tail, and refuses mid-file corruption;
 *  - verifyShardCache trusts only a strictly-parsing, fully-accounted
 *    artifact;
 *  - full campaigns against fake /bin/sh workers: happy path,
 *    flaky-then-succeed, hang-then-SIGKILL-at-deadline, torn output
 *    that fails verification, permanent failure degrading into
 *    synthesized quarantine rows, and --resume skipping verified
 *    shards — with the merged cache byte-identical to the
 *    uninterrupted merge whenever no shard gave up;
 *  - the in-process wall-clock watchdog (`last_sweep run
 *    --timeout-ms`) quarantines an over-budget spec as a deadlock.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/error.hh"
#include "common/logging.hh"
#include "sim/bench_cache.hh"
#include "sim/orchestrate.hh"
#include "sim/shard.hh"

using namespace last;

namespace
{

/** A fresh directory under /tmp for one campaign or journal. */
struct TempDir
{
    std::string path;

    TempDir()
    {
        char buf[] = "/tmp/last_orch_XXXXXX";
        const char *p = ::mkdtemp(buf);
        EXPECT_NE(p, nullptr);
        path = p ? p : "/tmp";
    }
};

std::string
readFile(const std::string &path)
{
    std::ifstream f(path);
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream f(path);
    f << content;
}

/** Write an executable /bin/sh worker script. */
void
writeScript(const std::string &path, const std::string &body)
{
    writeFile(path, "#!/bin/sh\n" + body);
    ::chmod(path.c_str(), 0755);
}

std::string
cacheBytes(const sim::BenchCacheFile &c)
{
    std::ostringstream os;
    sim::writeBenchCache(os, c);
    return os.str();
}

/** A synthetic matrix of fake workloads: campaigns against /bin/sh
 *  workers never touch the simulator, so the names need not exist. */
std::vector<sim::RunSpec>
fakeMatrix()
{
    workloads::WorkloadScale scale{1.0};
    std::vector<sim::RunSpec> specs;
    for (const char *w : {"FakeA", "FakeB"})
        for (IsaKind isa : AllIsas)
            specs.push_back({w, isa, GpuConfig{}, scale});
    return specs;
}

/** The cache a healthy worker would produce for one shard manifest. */
sim::BenchCacheFile
goldenPart(const sim::ShardManifest &m)
{
    sim::BenchCacheFile c;
    c.scale = m.entries.empty() ? 1.0 : m.entries[0].scaleFactor;
    for (const auto &e : m.entries) {
        sim::CachedRun row;
        row.key = sim::specCacheKey(sim::specFromEntry(e));
        row.result.workload = e.workload;
        row.result.isa = e.isa;
        row.result.verified = true;
        row.result.digest = 0x1000 + e.index;
        row.result.dynInsts = 10 * (e.index + 1);
        row.result.cycles = 100 * (e.index + 1);
        row.result.ipc = 0.5;
        c.rows.push_back(std::move(row));
    }
    return c;
}

/**
 * One fake-worker campaign: golden per-shard caches on disk (exported
 * via $LAST_ORCH_DIR so the worker script can `cp` them), fast retry
 * timing, and the expected uninterrupted merge for byte-identity
 * checks. Worker scripts receive the real worker argv — $2 is the
 * manifest (shard_<i>.json, so `i` is recoverable), $6 the output
 * path — plus LAST_CHAOS_SHARD / LAST_CHAOS_ATTEMPT in the
 * environment.
 */
struct Campaign
{
    TempDir dir;
    std::vector<sim::RunSpec> specs = fakeMatrix();
    std::vector<sim::ShardManifest> manifests;
    std::string expectedMerged;
    sim::OrchestrateOptions opts;

    explicit Campaign(unsigned shards)
    {
        manifests = sim::makeShardManifests(specs, shards);
        std::vector<sim::BenchCacheFile> parts;
        for (const auto &m : manifests) {
            auto g = goldenPart(m);
            writeFile(dir.path + "/golden_" +
                          std::to_string(m.shardIndex) + ".csv",
                      cacheBytes(g));
            parts.push_back(std::move(g));
        }
        expectedMerged = cacheBytes(sim::mergeBenchCaches(parts));
        ::setenv("LAST_ORCH_DIR", dir.path.c_str(), 1);

        opts.shards = shards;
        opts.matrix = specs;
        opts.workDir = dir.path;
        opts.outPath = dir.path + "/merged.csv";
        opts.backoff.baseMs = 1;
        opts.backoff.capMs = 4;
        opts.pollIntervalMs = 5;
    }

    /** Script prelude binding $i (shard index) and $out. */
    static std::string
    prelude()
    {
        return "m=\"$2\"\n"
               "out=\"$6\"\n"
               "i=$(basename \"$m\" .json)\n"
               "i=${i#shard_}\n";
    }

    void
    setWorker(const std::string &body)
    {
        std::string p = dir.path + "/worker.sh";
        writeScript(p, prelude() + body);
        opts.workerExe = p;
    }
};

/** Swallow warn/inform noise from the supervisor during a campaign. */
struct QuietLogs
{
    QuietLogs()
    {
        setLogHook([](const char *, const std::string &) {});
    }
    ~QuietLogs() { setLogHook(nullptr); }
};

const std::string copyGolden =
    "cp \"$LAST_ORCH_DIR/golden_$i.csv\" \"$out\"\nexit 0\n";

} // namespace

TEST(BackoffPolicy, CappedExponentialWithBoundedDeterministicJitter)
{
    sim::BackoffPolicy p; // base 250, cap 8000
    struct Row
    {
        unsigned attempt;
        uint64_t raw; ///< un-jittered delay: min(cap, base * 2^(a-1))
    };
    const Row rows[] = {{1, 250},  {2, 500},  {3, 1000}, {4, 2000},
                        {5, 4000}, {6, 8000}, {7, 8000}, {12, 8000}};
    for (const Row &r : rows) {
        for (unsigned shard = 0; shard < 4; ++shard) {
            uint64_t d = p.delayMs(shard, r.attempt);
            EXPECT_GE(d, r.raw / 2) << "attempt " << r.attempt;
            EXPECT_LE(d, r.raw) << "attempt " << r.attempt;
            // Pure function: same inputs, same delay.
            EXPECT_EQ(d, p.delayMs(shard, r.attempt));
        }
    }

    // Jitter decorrelates shards: identical attempts must not all
    // agree across shards (lockstep retry storms).
    bool differs = false;
    for (unsigned a = 1; a <= 6 && !differs; ++a)
        differs = p.delayMs(0, a) != p.delayMs(1, a);
    EXPECT_TRUE(differs);

    EXPECT_EQ(p.delayMs(0, 0), 0u);
    sim::BackoffPolicy zero;
    zero.baseMs = 0;
    EXPECT_EQ(zero.delayMs(1, 3), 0u);

    EXPECT_FALSE(p.giveUp(0));
    EXPECT_FALSE(p.giveUp(3));
    EXPECT_TRUE(p.giveUp(4));
    EXPECT_TRUE(p.giveUp(5));
}

TEST(Orchestrate, ClassifyExitFromRealWaitStatuses)
{
    // std::system returns a raw wait(2) status on POSIX.
    int clean = std::system("exit 0");
    int quar = std::system("exit 2");
    int fail = std::system("exit 7");
    int crash = std::system("kill -KILL $$");

    auto es = sim::classifyExit(clean, false);
    EXPECT_EQ(es.cls, sim::ExitClass::Clean);
    EXPECT_EQ(es.code, 0);
    EXPECT_EQ(es.describe(), "clean (exit 0)");

    es = sim::classifyExit(quar, false);
    EXPECT_EQ(es.cls, sim::ExitClass::Quarantine);
    EXPECT_EQ(es.code, 2);

    es = sim::classifyExit(fail, false);
    EXPECT_EQ(es.cls, sim::ExitClass::Failure);
    EXPECT_EQ(es.code, 7);

    es = sim::classifyExit(crash, false);
    EXPECT_EQ(es.cls, sim::ExitClass::Crash);
    EXPECT_EQ(es.sig, SIGKILL);
    EXPECT_EQ(es.describe(), "crash (signal 9)");

    // The supervisor's own deadline kill overrides the raw status.
    es = sim::classifyExit(crash, true);
    EXPECT_EQ(es.cls, sim::ExitClass::Timeout);
    EXPECT_EQ(es.sig, SIGKILL);
    EXPECT_EQ(es.describe(), "timeout (signal 9)");
}

TEST(Orchestrate, JournalRoundTripToleratesTornTailOnly)
{
    TempDir d;
    const std::string p = d.path + "/j.jsonl";
    {
        sim::Journal j;
        j.open(p, /*truncate=*/true);
        j.append("{\"event\":\"a\",\"n\":1}");
        j.append("{\"event\":\"b\",\"n\":2}");
    }
    auto lines = sim::loadJournal(p);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(jsonin::asString(jsonin::require(lines[0], "event", p),
                               "event", p),
              "a");
    EXPECT_EQ(jsonin::asU64(jsonin::require(lines[1], "n", p), "n", p),
              2u);

    std::vector<std::string> warnings;
    setLogHook([&](const char *level, const std::string &msg) {
        if (std::string(level) == "warn")
            warnings.push_back(msg);
    });

    // Crash mid-append: an unterminated final line is dropped loudly;
    // everything before it survives.
    {
        std::ofstream f(p, std::ios::app);
        f << "{\"event\":\"c\"";
    }
    lines = sim::loadJournal(p);
    EXPECT_EQ(lines.size(), 2u);
    ASSERT_EQ(warnings.size(), 1u);
    EXPECT_NE(warnings[0].find("torn"), std::string::npos);

    // A terminated-but-unparseable final line is likewise dropped.
    warnings.clear();
    writeFile(p, "{\"event\":\"a\"}\n{garbage\n");
    lines = sim::loadJournal(p);
    EXPECT_EQ(lines.size(), 1u);
    ASSERT_EQ(warnings.size(), 1u);
    EXPECT_NE(warnings[0].find("unparseable"), std::string::npos);
    setLogHook(nullptr);

    // Corruption BEFORE the tail is not crash residue — refuse it.
    writeFile(p, "{garbage\n{\"event\":\"a\"}\n");
    EXPECT_THROW(sim::loadJournal(p), ConfigError);

    // An absent journal is an empty history, not an error.
    EXPECT_TRUE(sim::loadJournal(d.path + "/absent.jsonl").empty());

    // Re-opening without truncation appends after the existing lines.
    writeFile(p, "{\"event\":\"a\"}\n");
    {
        sim::Journal j;
        j.open(p, /*truncate=*/false);
        j.append("{\"event\":\"b\"}");
    }
    EXPECT_EQ(sim::loadJournal(p).size(), 2u);
}

TEST(Orchestrate, VerifyShardCacheTrustsOnlyCompleteArtifacts)
{
    TempDir d;
    auto specs = fakeMatrix();
    auto ms = sim::makeShardManifests(specs, 2);
    const std::string full = cacheBytes(goldenPart(ms[0]));
    const std::string p = d.path + "/part_0.csv";
    writeFile(p, full);

    std::string why;
    EXPECT_TRUE(sim::verifyShardCache(p, ms[0], &why)) << why;

    EXPECT_FALSE(sim::verifyShardCache(d.path + "/absent.csv", ms[0],
                                       &why));
    EXPECT_EQ(why, "missing");

    // The right rows for the WRONG shard: complete file, wrong keys.
    EXPECT_FALSE(sim::verifyShardCache(p, ms[1], &why));
    EXPECT_NE(why.find("missing row"), std::string::npos);

    // A torn artifact (cut mid-file) never verifies.
    writeFile(p, full.substr(0, full.size() / 2));
    EXPECT_FALSE(sim::verifyShardCache(p, ms[0], &why));
    EXPECT_NE(why.find("at byte"), std::string::npos);
}

TEST(OrchestrateCampaign, HappyPathMergesByteIdentical)
{
    QuietLogs quiet;
    Campaign c(2);
    c.setWorker(copyGolden);

    auto out = sim::runCampaign(c.opts);
    EXPECT_TRUE(out.allShardsDone());
    EXPECT_EQ(out.retries, 0u);
    EXPECT_EQ(out.gaveUp, 0u);
    EXPECT_EQ(out.quarantinedRows, 0u);
    ASSERT_EQ(out.shards.size(), 2u);
    for (const auto &so : out.shards) {
        EXPECT_TRUE(so.done);
        EXPECT_EQ(so.attempts, 1u);
    }
    EXPECT_EQ(readFile(c.opts.outPath), c.expectedMerged);
    EXPECT_EQ(cacheBytes(out.merged), c.expectedMerged);

    // The journal narrates the campaign: header first, merged last.
    const std::string jp = c.dir.path + "/journal.jsonl";
    auto lines = sim::loadJournal(jp);
    ASSERT_GE(lines.size(), 2u);
    EXPECT_EQ(jsonin::asString(jsonin::require(lines[0], "schema", jp),
                               "schema", jp),
              sim::JournalSchema);
    EXPECT_EQ(jsonin::asString(
                  jsonin::require(lines.back(), "event", jp), "event",
                  jp),
              "merged");
}

TEST(OrchestrateCampaign, FlakyWorkersAreRetriedToSuccess)
{
    QuietLogs quiet;
    Campaign c(2);
    // Every shard's first attempt dies; the second succeeds.
    c.setWorker("if [ \"$LAST_CHAOS_ATTEMPT\" -lt 2 ]; then exit 1; fi\n" +
                copyGolden);

    auto out = sim::runCampaign(c.opts);
    EXPECT_TRUE(out.allShardsDone());
    EXPECT_EQ(out.retries, 2u);
    for (const auto &so : out.shards)
        EXPECT_EQ(so.attempts, 2u);
    EXPECT_EQ(readFile(c.opts.outPath), c.expectedMerged);
}

TEST(OrchestrateCampaign, HungWorkerIsKilledAtDeadlineAndRetried)
{
    QuietLogs quiet;
    Campaign c(2);
    // Shard 1's first attempt hangs forever; the supervisor must shoot
    // it at the deadline and the retry succeeds.
    c.setWorker("if [ \"$LAST_CHAOS_SHARD\" = 1 ] && "
                "[ \"$LAST_CHAOS_ATTEMPT\" = 1 ]; then exec sleep 60; "
                "fi\n" +
                copyGolden);
    c.opts.workerTimeoutMs = 300;
    c.opts.pollIntervalMs = 20;

    auto out = sim::runCampaign(c.opts);
    EXPECT_TRUE(out.allShardsDone());
    EXPECT_EQ(out.retries, 1u);
    EXPECT_EQ(out.shards[0].attempts, 1u);
    EXPECT_EQ(out.shards[1].attempts, 2u);
    EXPECT_NE(out.shards[1].lastFailure.find("timeout"),
              std::string::npos);
    EXPECT_EQ(readFile(c.opts.outPath), c.expectedMerged);
}

TEST(OrchestrateCampaign, TornOutputFailsVerificationAndRetries)
{
    QuietLogs quiet;
    Campaign c(2);
    // Shard 0's first attempt exits 0 but leaves a truncated cache —
    // the exit status lies, the artifact doesn't.
    c.setWorker("if [ \"$LAST_CHAOS_SHARD\" = 0 ] && "
                "[ \"$LAST_CHAOS_ATTEMPT\" = 1 ]; then\n"
                "  head -c 40 \"$LAST_ORCH_DIR/golden_$i.csv\" > "
                "\"$out\"\n"
                "  exit 0\n"
                "fi\n" +
                copyGolden);

    auto out = sim::runCampaign(c.opts);
    EXPECT_TRUE(out.allShardsDone());
    EXPECT_EQ(out.retries, 1u);
    EXPECT_EQ(out.shards[0].attempts, 2u);
    EXPECT_EQ(readFile(c.opts.outPath), c.expectedMerged);
}

TEST(OrchestrateCampaign, PermanentFailureDegradesToQuarantineRows)
{
    QuietLogs quiet;
    Campaign c(2);
    c.setWorker("if [ \"$LAST_CHAOS_SHARD\" = 0 ]; then exit 3; fi\n" +
                copyGolden);
    c.opts.backoff.maxAttempts = 2;

    auto out = sim::runCampaign(c.opts);
    EXPECT_FALSE(out.allShardsDone());
    EXPECT_EQ(out.gaveUp, 1u);
    EXPECT_TRUE(out.shards[0].gaveUp);
    EXPECT_EQ(out.shards[0].attempts, 2u);
    EXPECT_TRUE(out.shards[1].done);

    // Shard 0's two specs degrade into synthesized quarantine rows;
    // shard 1's golden rows survive untouched.
    EXPECT_EQ(out.quarantinedRows,
              c.manifests[0].entries.size());
    size_t synthesized = 0;
    for (const auto &row : out.merged.rows) {
        if (!row.result.quarantined)
            continue;
        ++synthesized;
        EXPECT_EQ(row.result.errorKind, "worker-failure");
        EXPECT_NE(row.result.errorMessage.find("gave up after 2"),
                  std::string::npos);
    }
    EXPECT_EQ(synthesized, c.manifests[0].entries.size());

    // The merged artifact still accounts for every spec in the matrix.
    EXPECT_EQ(out.merged.rows.size(), c.specs.size());
}

TEST(OrchestrateCampaign, ResumeSkipsVerifiedShardsAndRerunsTheRest)
{
    QuietLogs quiet;
    Campaign c(2);
    c.setWorker(copyGolden);
    ASSERT_TRUE(sim::runCampaign(c.opts).allShardsDone());

    // Simulate a crash that lost shard 1's artifact. On resume, shard
    // 0's cache verifies and must be skipped — enforced by a worker
    // that refuses to run shard 0 — while shard 1 is re-run.
    ::unlink((c.dir.path + "/part_1.csv").c_str());
    c.setWorker("if [ \"$LAST_CHAOS_SHARD\" = 0 ]; then exit 9; fi\n" +
                copyGolden);
    c.opts.resume = true;

    auto out = sim::runCampaign(c.opts);
    EXPECT_TRUE(out.allShardsDone());
    EXPECT_EQ(out.skippedOnResume, 1u);
    EXPECT_TRUE(out.shards[0].skipped);
    EXPECT_EQ(out.shards[0].attempts, 0u);
    EXPECT_FALSE(out.shards[1].skipped);
    EXPECT_EQ(out.shards[1].attempts, 1u);
    EXPECT_EQ(out.retries, 0u);
    EXPECT_EQ(readFile(c.opts.outPath), c.expectedMerged);

    // A warm second resume skips everything and simulates nothing.
    auto warm = sim::runCampaign(c.opts);
    EXPECT_EQ(warm.skippedOnResume, 2u);
    for (const auto &so : warm.shards)
        EXPECT_EQ(so.attempts, 0u);
    EXPECT_EQ(readFile(c.opts.outPath), c.expectedMerged);

    // Resuming with different campaign parameters over the same
    // journal is refused, not silently merged.
    c.opts.shards = 3;
    EXPECT_THROW(sim::runCampaign(c.opts), ConfigError);
}

TEST(ShardTimeout, WallClockBudgetQuarantinesAsDeadlock)
{
    // The in-process half of the timeout machinery (`last_sweep run
    // --timeout-ms`): a 1 ms budget on a real multi-kernel workload
    // trips the wall-clock watchdog inside Gpu::runToCompletion, and
    // the spec degrades into a quarantine row instead of an abort.
    QuietLogs quiet;
    workloads::WorkloadScale scale{1.0};
    std::vector<sim::RunSpec> specs = {
        {"pipeline", IsaKind::HSAIL, GpuConfig{}, scale},
    };
    sim::ShardRunOptions opts;
    opts.timeoutMs = 1;
    auto outcome =
        sim::runShard(sim::makeShardManifests(specs, 1)[0], opts);
    ASSERT_EQ(outcome.quarantined, 1u);
    ASSERT_EQ(outcome.cache.rows.size(), 1u);
    const auto &r = outcome.cache.rows[0].result;
    EXPECT_TRUE(r.quarantined);
    EXPECT_EQ(r.errorKind, "deadlock");
    EXPECT_NE(r.errorMessage.find("wall-clock"), std::string::npos);
}
